#include "wsn/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::wsn {

namespace {

// Telemetry-only: one counter per fault class, so a snapshot shows the
// injection mix without consulting the ground-truth log.
void count_fault_injection(FaultCommand::Type type) {
  switch (type) {
    case FaultCommand::Type::kNodeFailure:
      VN2_COUNT("sim.fault.node_failure");
      break;
    case FaultCommand::Type::kNodeReboot:
      VN2_COUNT("sim.fault.node_reboot");
      break;
    case FaultCommand::Type::kLinkDegradation:
      VN2_COUNT("sim.fault.link_degradation");
      break;
    case FaultCommand::Type::kJammer:
      VN2_COUNT("sim.fault.jammer");
      break;
    case FaultCommand::Type::kForcedLoop:
      VN2_COUNT("sim.fault.forced_loop");
      break;
    case FaultCommand::Type::kBatteryDrain:
      VN2_COUNT("sim.fault.battery_drain");
      break;
    case FaultCommand::Type::kCongestionBurst:
      VN2_COUNT("sim.fault.congestion_burst");
      break;
    case FaultCommand::Type::kNoiseRise:
      VN2_COUNT("sim.fault.noise_rise");
      break;
    case FaultCommand::Type::kTemperatureSpike:
      VN2_COUNT("sim.fault.temperature_spike");
      break;
  }
}

}  // namespace

using metrics::MetricId;
using metrics::PacketType;

Simulator::Simulator(SimConfig config)
    : config_(std::move(config)),
      environment_(config_.environment, config_.seed ^ 0xE27ULL),
      radio_(config_.radio, &environment_, config_.seed ^ 0x4Ad10ULL),
      rng_(config_.seed) {
  if (config_.positions.size() < 2)
    throw std::invalid_argument("Simulator: need at least a sink and a node");
  if (config_.positions.size() > kInvalidNode)
    throw std::invalid_argument("Simulator: too many nodes");

  const std::size_t n = config_.positions.size();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(static_cast<NodeId>(i),
                                            config_.positions[i],
                                            config_.node));
  }
  generation_.assign(n, 0);

  // Sink is the collection root: route cost 0, always routable.
  nodes_[kSinkId]->set_route(kInvalidNode, 0.0);

  // Precompute static in-range candidates with cached directed RSSI —
  // shadowing is deterministic per link, so this never changes.
  in_range_.resize(n);
  rssi_cache_.resize(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t w = 0; w < n; ++w) {
      if (u == w) continue;
      const double rssi =
          radio_.rssi_dbm(static_cast<NodeId>(u), config_.positions[u],
                          static_cast<NodeId>(w), config_.positions[w]);
      if (rssi >= config_.radio.sensitivity_dbm) {
        in_range_[u].push_back(static_cast<NodeId>(w));
        rssi_cache_[u].push_back(rssi);
      }
    }
  }
}

bool Simulator::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
}

double Simulator::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng_);
}

double Simulator::link_prr(NodeId from, NodeId to, Time t) const {
  VN2_REQUIRE(from < config_.positions.size() && to < config_.positions.size(),
              "link_prr: node id out of range");
  return radio_.prr(from, config_.positions[from], to, config_.positions[to],
                    t);
}

std::vector<NodeId> Simulator::nodes_in_region(const Position& center,
                                               double radius) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (distance(config_.positions[i], center) <= radius)
      out.push_back(static_cast<NodeId>(i));
  return out;
}

void Simulator::inject(const FaultCommand& command) {
  VN2_COUNT("sim.faults.injected");
  count_fault_injection(command.type);
  InjectedFault record;
  record.command = command;
  record.hazard = hazard_of(command.type);

  switch (command.type) {
    case FaultCommand::Type::kNodeFailure:
      record.affected_nodes = {command.node};
      queue_.schedule(command.start, [this, command] {
        Node& node = *nodes_.at(command.node);
        if (!node.alive()) return;
        node.fail();
        ++generation_[command.node];
      });
      break;

    case FaultCommand::Type::kNodeReboot:
      record.affected_nodes = {command.node};
      queue_.schedule(command.start, [this, command] {
        Node& node = *nodes_.at(command.node);
        node.reboot(queue_.now());
        ++generation_[command.node];
        schedule_node_timers(command.node);
      });
      break;

    case FaultCommand::Type::kLinkDegradation:
      record.affected_nodes = {command.node, command.peer};
      radio_.degrade_link(command.node, command.peer, command.magnitude,
                          command.start, command.end);
      break;

    case FaultCommand::Type::kJammer:
      record.affected_nodes =
          nodes_in_region(command.center, command.radius_m);
      jammers_.push_back({command.center, command.radius_m, command.start,
                          command.end, command.magnitude});
      // A jammer also raises the local noise floor, degrading PRR in
      // proportion to its intensity.
      environment_.add_disturbance(
          {Disturbance::Kind::kNoiseRise, command.center, command.radius_m,
           command.start, command.end, 4.0 + 10.0 * command.magnitude});
      break;

    case FaultCommand::Type::kForcedLoop:
      record.affected_nodes = {command.node};
      queue_.schedule(command.start, [this, command] {
        Node& node = *nodes_.at(command.node);
        if (!node.alive()) return;
        // Re-point the node's parent at one of its children: the classic
        // stale-route loop.
        for (const auto& candidate : nodes_) {
          if (candidate->alive() && candidate->parent() == command.node) {
            node.set_route(candidate->id(), node.path_etx());
            node.pin_route(true);
            node.bump(MetricId::kParentChangeCounter);
            break;
          }
        }
      });
      queue_.schedule(command.end, [this, command] {
        Node& node = *nodes_.at(command.node);
        node.pin_route(false);
        node.clear_route();
        update_route(command.node);
      });
      break;

    case FaultCommand::Type::kBatteryDrain:
      record.affected_nodes = {command.node};
      queue_.schedule(command.start, [this, command] {
        nodes_.at(command.node)
            ->set_battery_drain_multiplier(std::max(command.magnitude, 1.0));
      });
      queue_.schedule(command.end, [this, command] {
        nodes_.at(command.node)->set_battery_drain_multiplier(1.0);
      });
      break;

    case FaultCommand::Type::kCongestionBurst: {
      record.affected_nodes =
          nodes_in_region(command.center, command.radius_m);
      // Affected nodes emit an extra data packet every `period` seconds.
      const double rate = std::max(command.magnitude, 0.01);
      const Time period = 1.0 / rate;
      const auto targets = record.affected_nodes;
      for (Time t = command.start; t < command.end; t += period) {
        queue_.schedule(t, [this, targets] {
          for (NodeId id : targets) {
            if (id == kSinkId) continue;
            Node& node = *nodes_.at(id);
            if (!node.alive()) continue;
            DataPacket packet;
            packet.origin = id;
            packet.origin_seq = node.next_data_seq();
            packet.epoch = node.report_epoch;
            packet.type = PacketType::kC3;
            const BlockRange range = block_range(packet.type);
            packet.values.assign(
                node.metrics().begin() + static_cast<long>(range.first),
                node.metrics().begin() +
                    static_cast<long>(range.first + range.count));
            packet.created = queue_.now();
            node.bump(MetricId::kSelfTransmitCounter);
            node.enqueue(std::move(packet));
            try_send(id);
          }
        });
      }
      break;
    }

    case FaultCommand::Type::kNoiseRise:
      record.affected_nodes =
          nodes_in_region(command.center, command.radius_m);
      environment_.add_disturbance(
          {Disturbance::Kind::kNoiseRise, command.center, command.radius_m,
           command.start, command.end, command.magnitude});
      break;

    case FaultCommand::Type::kTemperatureSpike:
      record.affected_nodes =
          nodes_in_region(command.center, command.radius_m);
      environment_.add_disturbance(
          {Disturbance::Kind::kTemperatureSpike, command.center,
           command.radius_m, command.start, command.end, command.magnitude});
      // A heat wave dries the air: relative humidity drops alongside, so
      // the C1 sensor block carries a correlated multi-metric signature.
      environment_.add_disturbance(
          {Disturbance::Kind::kHumiditySpike, command.center,
           command.radius_m, command.start, command.end,
           -1.5 * command.magnitude});
      break;
  }

  ground_truth_.push_back(std::move(record));
}

void Simulator::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    schedule_node_timers(static_cast<NodeId>(i));
}

void Simulator::schedule_node_timers(NodeId id) {
  VN2_REQUIRE(id < nodes_.size(), "schedule_node_timers: node id out of range");
  const std::uint32_t generation = generation_[id];
  // Jittered phase so nodes do not fire in lockstep.
  queue_.schedule_in(uniform(0.0, config_.beacon_period),
                     [this, id, generation] { beacon_tick(id, generation); });
  if (id != kSinkId) {
    queue_.schedule_in(uniform(0.5, 1.0) * config_.report_period,
                       [this, id, generation] { report_tick(id, generation); });
  }
}

void Simulator::beacon_tick(NodeId id, std::uint32_t generation) {
  if (generation != generation_[id]) return;  // Stale timer (fail/reboot).
  Node& node = *nodes_[id];
  if (!node.alive()) return;

  const Time now = queue_.now();

  // Broadcast a routing beacon advertising our path ETX.
  const std::uint32_t seq = node.next_beacon_seq();
  const double advertised =
      id == kSinkId ? 0.0
                    : (node.has_parent() ? node.path_etx()
                                         : NeighborTable::kEtxCap);
  node.bump(MetricId::kBeaconSentCounter);
  node.bump(MetricId::kTransmitCounter);
  // Under LPL a broadcast must span a full wake interval so every sleeping
  // neighbor's probe catches it.
  const double beacon_airtime = config_.low_power_listening
                                    ? config_.lpl_interval
                                    : config_.tx_duration_s;
  node.bump(MetricId::kRadioOnTime, beacon_airtime);
  node.drain(beacon_airtime * config_.node.drain_per_radio_second +
             config_.node.drain_per_transmission);
  stats_.beacons_sent++;
  VN2_COUNT("sim.beacons");
  bump_activity_around(id);

  const auto& candidates = in_range_[id];
  const auto& rssi = rssi_cache_[id];
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const NodeId w = candidates[k];
    Node& receiver = *nodes_[w];
    if (!receiver.alive()) continue;
    if (!chance(link_prr(id, w, now))) continue;
    receiver.bump(MetricId::kBeaconRecvCounter);
    // The RSSI register reads total received power: for weak signals a
    // rising noise floor is visible in the sampled RSSI (Table I's
    // "a node detects that its neighbors' noises are increasing").
    const double noise = environment_.noise_floor_dbm(receiver.position(), now);
    double sample = rssi[k];
    if (noise > sample - 15.0) {
      sample = 10.0 * std::log10(std::pow(10.0, sample / 10.0) +
                                 std::pow(10.0, noise / 10.0));
    }
    receiver.table().on_beacon(id, sample, seq, advertised, now,
                               receiver.parent());
    if (w != kSinkId && !receiver.route_pinned()) update_route(w);
  }

  // Trickle: while the route stays stable the interval doubles, up to the
  // cap; route events reset it back to the base period (see
  // reset_beacon_interval). Fixed-period mode keeps the base interval.
  Time interval = config_.beacon_period;
  if (config_.adaptive_beaconing) {
    if (node.beacon_interval <= 0.0)
      node.beacon_interval = config_.beacon_period;
    // A node without a route stays at the base cadence — it is actively
    // looking for a parent; only a stable routed node backs off.
    if (id != kSinkId && !node.has_parent())
      node.beacon_interval = config_.beacon_period;
    interval = node.beacon_interval;
    // The cap must stay well below the neighbor-expiry timeout, or backed-
    // off nodes vanish from each other's tables between beacons.
    const Time cap = std::min(config_.beacon_interval_max > 0.0
                                  ? config_.beacon_interval_max
                                  : 8.0 * config_.beacon_period,
                              config_.neighbor_timeout / 3.0);
    node.beacon_interval =
        std::min(2.0 * node.beacon_interval, std::max(cap, config_.beacon_period));
  }

  // Clock drift scales the nominal interval; ±5% jitter desynchronizes.
  const double scale =
      node.clock_scale(environment_.temperature_c(node.position(), now));
  const Time next = interval * scale * uniform(0.95, 1.05);
  queue_.schedule_in(next,
                     [this, id, generation] { beacon_tick(id, generation); });
}

void Simulator::reset_beacon_interval(Node& node) {
  if (config_.adaptive_beaconing)
    node.beacon_interval = config_.beacon_period;
}

void Simulator::sample_sensors(Node& node) {
  const Time now = queue_.now();
  const Position& p = node.position();
  const std::uint64_t epoch = node.report_epoch;
  auto jitter = [&](MetricId id) {
    return environment_.sensor_jitter(node.id(), metrics::index_of(id), epoch);
  };
  node.set_metric(MetricId::kTemperature, environment_.temperature_c(p, now) *
                                              jitter(MetricId::kTemperature));
  node.set_metric(MetricId::kHumidity, environment_.humidity_pct(p, now) *
                                           jitter(MetricId::kHumidity));
  node.set_metric(MetricId::kLight,
                  environment_.light_lux(p, now) * jitter(MetricId::kLight));
  // The battery ADC quantizes to ~3 mV steps (TelosB): without this, the
  // reported voltage carries artificial micro-variance (per-epoch drain
  // differences of microvolts) that would dominate the metric's σ.
  constexpr double kVoltageAdcStep = 0.003;
  node.set_metric(MetricId::kVoltage,
                  std::round(node.voltage() / kVoltageAdcStep) *
                      kVoltageAdcStep);
  node.set_metric(MetricId::kPathEtx,
                  node.has_parent() ? node.path_etx() : NeighborTable::kEtxCap);
}

void Simulator::report_tick(NodeId id, std::uint32_t generation) {
  if (generation != generation_[id]) return;
  Node& node = *nodes_[id];
  if (!node.alive()) return;

  const Time now = queue_.now();

  // Idle listening cost for the epoch that just ended. LPL replaces
  // continuous listening with brief periodic channel probes.
  const double duty = config_.low_power_listening
                          ? config_.lpl_probe / config_.lpl_interval
                          : config_.idle_duty_cycle;
  const double idle_on = config_.report_period * duty;
  node.bump(MetricId::kRadioOnTime, idle_on);
  node.drain(idle_on * config_.node.drain_per_radio_second);

  // Brown-out: below 2.8 V the mote stops working (paper, Table I).
  if (node.brown_out()) {
    node.fail();
    ++generation_[id];
    return;
  }

  node.table().expire(now, config_.neighbor_timeout);
  if (!node.route_pinned()) update_route(id);

  sample_sensors(node);
  node.refresh_neighbor_metrics();

  if (!node.has_parent()) node.bump(MetricId::kNoParentCounter);

  // Path length: walk the parent chain (bounded by max_hops).
  double path_len = 0.0;
  NodeId cursor = id;
  for (std::uint8_t h = 0; h < config_.max_hops; ++h) {
    const Node& current = *nodes_[cursor];
    if (cursor == kSinkId) break;
    if (!current.has_parent()) {
      path_len = config_.max_hops;
      break;
    }
    cursor = current.parent();
    ++path_len;
  }
  node.set_metric(MetricId::kPathLength, path_len);

  // Emit the three report packets (C1, C2, C3).
  for (PacketType type :
       {PacketType::kC1, PacketType::kC2, PacketType::kC3}) {
    DataPacket packet;
    packet.origin = id;
    packet.origin_seq = node.next_data_seq();
    packet.epoch = node.report_epoch;
    packet.type = type;
    const BlockRange range = block_range(type);
    packet.values.assign(
        node.metrics().begin() + static_cast<long>(range.first),
        node.metrics().begin() + static_cast<long>(range.first + range.count));
    packet.created = now;
    originations_.push_back({now, id, packet.epoch, type});
    node.bump(MetricId::kSelfTransmitCounter);
    node.enqueue(std::move(packet));
  }
  node.report_epoch++;
  try_send(id);

  const double scale =
      node.clock_scale(environment_.temperature_c(node.position(), now));
  const Time next = config_.report_period * scale * uniform(0.98, 1.02);
  queue_.schedule_in(next,
                     [this, id, generation] { report_tick(id, generation); });
}

void Simulator::try_send(NodeId id) {
  VN2_REQUIRE(id < nodes_.size(), "try_send: node id out of range");
  Node& node = *nodes_[id];
  if (!node.alive() || node.sending || node.queue_empty()) return;
  if (!node.has_parent()) {
    // Hold the queue until a route appears; the periodic route updates via
    // beacons will eventually restore one.
    const std::uint32_t generation = generation_[id];
    node.sending = true;
    queue_.schedule_in(config_.route_hold_down, [this, id, generation] {
      if (generation != generation_[id]) return;
      nodes_[id]->sending = false;
      if (!nodes_[id]->route_pinned()) update_route(id);
      try_send(id);
    });
    return;
  }
  node.sending = true;
  const std::uint32_t generation = generation_[id];
  queue_.schedule_in(uniform(0.001, 0.01), [this, id, generation] {
    attempt_transmission(id, generation, 0);
  });
}

double Simulator::activity_of(Node& node) const {
  // Exponential decay with 1 s time constant, applied lazily.
  const Time now = queue_.now();
  const double dt = now - node.activity_updated;
  if (dt > 0.0) {
    node.channel_activity *= std::exp(-dt);
    node.activity_updated = now;
  }
  return node.channel_activity;
}

void Simulator::bump_activity_around(NodeId sender) {
  VN2_REQUIRE(sender < in_range_.size(),
              "bump_activity_around: node id out of range");
  for (NodeId w : in_range_[sender]) {
    Node& node = *nodes_[w];
    if (!node.alive()) continue;
    (void)activity_of(node);  // Decay first.
    node.channel_activity += 1.0;
  }
}

double Simulator::busy_probability(Node& node) const {
  double p = config_.csma_base_busy +
             config_.csma_activity_weight * activity_of(node);
  const Time now = queue_.now();
  for (const ActiveJammer& jam : jammers_) {
    if (now < jam.start || now > jam.end) continue;
    const double d = distance(node.position(), jam.center);
    if (d > jam.radius_m) continue;
    p += jam.intensity * (1.0 - d / std::max(jam.radius_m, 1e-9));
  }
  return std::clamp(p, 0.0, 0.95);
}

void Simulator::attempt_transmission(NodeId id, std::uint32_t generation,
                                     std::size_t backoffs) {
  VN2_REQUIRE(backoffs <= config_.csma_max_backoffs,
              "attempt_transmission: backoff count overran the CSMA limit");
  if (generation != generation_[id]) return;
  Node& node = *nodes_[id];
  if (!node.alive()) return;
  if (node.queue_empty()) {
    node.sending = false;
    return;
  }
  if (!node.has_parent()) {
    node.sending = false;
    try_send(id);  // Re-enters the no-parent hold-down path.
    return;
  }

  const Time now = queue_.now();

  // CSMA: carrier sense. A busy channel costs a backoff (and radio time).
  if (backoffs < config_.csma_max_backoffs && chance(busy_probability(node))) {
    node.bump(MetricId::kMacBackoffCounter);
    stats_.mac_backoffs++;
    VN2_COUNT("sim.mac.backoffs");
    node.bump(MetricId::kRadioOnTime, config_.backoff_delay);
    queue_.schedule_in(config_.backoff_delay * uniform(0.5, 1.5),
                       [this, id, generation, backoffs] {
                         attempt_transmission(id, generation, backoffs + 1);
                       });
    return;
  }

  DataPacket& head = node.queue_front();
  const NodeId parent_id = node.parent();
  Node& parent = *nodes_[parent_id];

  node.bump(MetricId::kTransmitCounter);
  if (head.origin != id && node.retransmit_count == 0)
    node.bump(MetricId::kForwardCounter);
  // LPL: the sender strobes a preamble until the receiver's next wake
  // moment — on average half an interval of extra airtime per unicast.
  const double unicast_airtime =
      config_.tx_duration_s +
      (config_.low_power_listening ? uniform(0.0, config_.lpl_interval) : 0.0);
  node.bump(MetricId::kRadioOnTime, unicast_airtime);
  node.drain(unicast_airtime * config_.node.drain_per_radio_second +
             config_.node.drain_per_transmission);
  stats_.data_transmissions++;
  VN2_COUNT("sim.packets.tx");
  bump_activity_around(id);

  head.sender_path_etx = node.path_etx();

  bool ack = false;
  if (parent.alive() && chance(link_prr(id, parent_id, now))) {
    stats_.data_delivered_hop++;
    VN2_COUNT("sim.packets.rx");
    DataPacket copy = head;
    copy.hops++;
    deliver_to(parent_id, std::move(copy), ack);
  }

  bool ack_received = false;
  if (ack) {
    parent.bump(MetricId::kRadioOnTime, config_.ack_duration_s);
    if (chance(link_prr(parent_id, id, now))) {
      ack_received = true;
    } else {
      parent.bump(MetricId::kAckFailCounter);
    }
  }

  node.table().on_unicast_result(parent_id, ack_received, now);

  if (ack_received) {
    node.pop_front();
    node.sending = false;
    if (!node.queue_empty()) {
      node.sending = true;
      queue_.schedule_in(config_.inter_packet_gap * uniform(0.8, 1.2),
                         [this, id, generation] {
                           attempt_transmission(id, generation, 0);
                         });
    }
    return;
  }

  // No ACK: retransmit up to the limit, then drop (paper: 30 tries).
  node.bump(MetricId::kNoackRetransmitCounter);
  stats_.noack_retransmits++;
  VN2_COUNT("sim.packets.retransmits");
  node.retransmit_count++;

  if (node.retransmit_count >= config_.node.max_retransmissions) {
    node.bump(MetricId::kDropPacketCounter);
    stats_.drops_after_retry_limit++;
    VN2_COUNT("sim.packets.dropped");
    node.pop_front();
  }

  // Persistent failure: give up on this parent and reroute.
  if (node.retransmit_count >= config_.parent_eviction_failures &&
      !node.route_pinned()) {
    node.table().evict(parent_id);
    node.clear_route();
    reset_beacon_interval(node);  // Losing the parent is a route event.
    update_route(id);
  }

  node.sending = false;
  if (!node.queue_empty()) {
    node.sending = true;
    queue_.schedule_in(config_.retry_delay * uniform(0.8, 1.2),
                       [this, id, generation] {
                         attempt_transmission(id, generation, 0);
                       });
  }
}

void Simulator::deliver_to(NodeId receiver_id, DataPacket packet, bool& ack) {
  VN2_REQUIRE(receiver_id < nodes_.size(), "deliver_to: node id out of range");
  Node& receiver = *nodes_[receiver_id];
  const Time now = queue_.now();
  receiver.bump(MetricId::kRadioOnTime, config_.tx_duration_s);

  // Datapath loop detection (CTP): a packet arriving from "below" whose
  // sender claims a path cost no higher than ours indicates a loop. The
  // margin absorbs ordinary ETX estimation noise — a healthy network must
  // not spray loop alarms (loops are *exceptions* here).
  constexpr double kLoopMarginEtx = 2.0;
  if (receiver_id != kSinkId && receiver.has_parent() &&
      receiver.path_etx() >= packet.sender_path_etx + kLoopMarginEtx &&
      packet.origin != receiver_id) {
    receiver.bump(MetricId::kLoopCounter);
    stats_.loops_detected++;
    VN2_COUNT("sim.loops_detected");
    reset_beacon_interval(receiver);
    if (!receiver.route_pinned()) update_route(receiver_id);
  }
  // A packet that returns to its origin is a definite loop.
  if (packet.origin == receiver_id) {
    receiver.bump(MetricId::kLoopCounter);
    stats_.loops_detected++;
    VN2_COUNT("sim.loops_detected");
    ack = true;  // Swallow it: origin drops its own returned packet.
    return;
  }

  // Duplicate suppression keyed on (origin, seq, hops) — CTP's THL trick:
  // a looping packet is re-accepted each revolution (hops grew) until TTL.
  const std::uint32_t dup_key_seq = packet.origin_seq ^
                                    (static_cast<std::uint32_t>(packet.hops)
                                     << 24);
  if (receiver.check_duplicate(packet.origin, dup_key_seq)) {
    stats_.duplicates++;
    VN2_COUNT("sim.packets.duplicates");
    ack = true;  // CTP acks duplicates so the sender stops retransmitting.
    return;
  }

  if (packet.hops >= config_.max_hops) {
    stats_.ttl_drops++;
    VN2_COUNT("sim.packets.dropped");
    receiver.bump(MetricId::kDropPacketCounter);
    ack = true;  // Swallow: the packet has no future.
    return;
  }

  if (receiver_id == kSinkId) {
    receiver.bump(MetricId::kReceiveCounter);
    stats_.packets_at_sink++;
    VN2_COUNT("sim.packets.at_sink");
    sink_log_.push_back({now, packet.origin, packet.epoch, packet.type,
                         std::move(packet.values), packet.hops});
    ack = true;
    return;
  }

  receiver.bump(MetricId::kReceiveCounter);
  if (!receiver.enqueue(std::move(packet))) {
    stats_.queue_overflows++;
    VN2_COUNT("sim.packets.dropped");
    ack = false;  // Queue overflow: no ACK, sender will retransmit.
    return;
  }
  ack = true;
  try_send(receiver_id);
}

void Simulator::update_route(NodeId id) {
  VN2_REQUIRE(id < nodes_.size(), "update_route: node id out of range");
  Node& node = *nodes_[id];
  if (id == kSinkId || !node.alive()) return;

  const auto best = node.table().best_parent();
  if (!best) {
    if (node.has_parent()) {
      node.clear_route();
      node.bump(MetricId::kParentChangeCounter);
      reset_beacon_interval(node);
    } else {
      node.clear_route();
    }
    return;
  }

  const NeighborEntry* entry = node.table().find(*best);
  const double best_etx = entry->route_etx();

  if (!node.has_parent()) {
    node.set_route(*best, best_etx);
    node.bump(MetricId::kParentChangeCounter);
    reset_beacon_interval(node);
    try_send(id);
    return;
  }

  if (node.parent() == *best) {
    node.set_route(*best, best_etx);  // Refresh cost only.
    return;
  }

  // Hysteresis: switch only for a clear improvement.
  const NeighborEntry* current = node.table().find(node.parent());
  const double current_etx =
      current ? current->route_etx() : NeighborTable::kEtxCap;
  if (best_etx + config_.parent_hysteresis_etx < current_etx) {
    node.set_route(*best, best_etx);
    node.bump(MetricId::kParentChangeCounter);
    reset_beacon_interval(node);
  } else {
    node.set_route(node.parent(), current_etx);
  }
}

void Simulator::run_until(Time t) {
  start();
  const std::size_t executed = queue_.run_until(t);
  VN2_COUNT_N("sim.events", executed);
}

SimulationResult Simulator::run() {
  run_until(config_.duration);
  return snapshot_result();
}

SimulationResult Simulator::snapshot_result() const {
  SimulationResult result;
  result.sink_log = sink_log_;
  result.originations = originations_;
  result.ground_truth = ground_truth_;
  result.stats = stats_;
  result.duration = config_.duration;
  result.node_count = nodes_.size();
  result.report_period = config_.report_period;
  return result;
}

}  // namespace vn2::wsn
