#include "metrics/hazards.hpp"

#include <stdexcept>

namespace vn2::metrics {

namespace {

using enum MetricId;

std::vector<MetricId> rssi_block() {
  std::vector<MetricId> ids;
  for (std::size_t i = 0; i < kMaxNeighbors; ++i)
    ids.push_back(neighbor_rssi(i));
  return ids;
}

const std::vector<HazardInfo>& table() {
  static const std::vector<HazardInfo> kTable = [] {
    std::vector<HazardInfo> t;
    t.push_back({HazardEvent::kUnstableClock,
                 "unstable-clock",
                 {kTemperature, kTransmitCounter},
                 "Hardware clocks are unstable due to temperature variation.",
                 "Packet pacing follows the hardware clock; an unstable clock "
                 "sends too fast or too slow and can create contention."});
    t.push_back({HazardEvent::kNodeLowVoltage,
                 "low-voltage",
                 {kVoltage},
                 "A node stops working if its voltage is below 2.8 V.",
                 "The node can no longer send or forward; if it is a key node "
                 "a subnetwork breaks down."});
    t.push_back({HazardEvent::kKeyNodeLargeSubtree,
                 "key-node-large-subtree",
                 {kNeighborNum, kForwardCounter},
                 "Many nodes choose the same parent, forming a large subtree.",
                 "A key-node breakdown causes a large packet loss."});
    t.push_back({HazardEvent::kRisingNoise,
                 "rising-noise",
                 rssi_block(),
                 "A node detects that its neighbors' noise is increasing.",
                 "Noise degrades packet receive ratio and indicates bad link "
                 "quality."});
    t.push_back({HazardEvent::kQueueOverflow,
                 "queue-overflow",
                 {kOverflowDropCounter, kDuplicateCounter},
                 "A node's receiving queue overflows.",
                 "Overflow loses both incoming and self-generated packets."});
    t.push_back({HazardEvent::kLinkDegradation,
                 "link-degradation",
                 {kNoackRetransmitCounter, kDropPacketCounter,
                  kDuplicateCounter, kPathEtx},
                 "No successful ACK returns; packets are retransmitted.",
                 "The sender-receiver link is poor, or the receiver cannot "
                 "keep up with incoming packets."});
    t.push_back({HazardEvent::kFrequentParentChange,
                 "frequent-parent-change",
                 {kParentChangeCounter, kBeaconRecvCounter},
                 "A node changes its parent frequently.",
                 "Indicates strong link dynamics, often correlated with "
                 "environmental conditions."});
    t.push_back({HazardEvent::kRoutingLoop,
                 "routing-loop",
                 {kLoopCounter, kTransmitCounter, kSelfTransmitCounter,
                  kDuplicateCounter, kOverflowDropCounter},
                 "A loop appears in the network.",
                 "Loops cause heavy packet loss and energy drain in an area."});
    t.push_back({HazardEvent::kPersistentDrop,
                 "persistent-drop",
                 {kDropPacketCounter, kNoackRetransmitCounter},
                 "A packet is dropped after 30 retransmissions.",
                 "The link is very poor or the peer is disconnected."});
    t.push_back({HazardEvent::kDuplicateStorm,
                 "duplicate-storm",
                 {kDuplicateCounter, kReceiveCounter},
                 "Too many duplicate packets circulate.",
                 "Wastes energy and buffer space; indicates poor link "
                 "quality."});
    t.push_back({HazardEvent::kNodeFailure,
                 "node-failure",
                 {kNoackRetransmitCounter, kParentChangeCounter,
                  kNoParentCounter, kNeighborNum},
                 "A node disappears from the network.",
                 "Neighbors lose their parent/child; traffic reroutes or is "
                 "lost."});
    t.push_back({HazardEvent::kNodeReboot,
                 "node-reboot",
                 {kVoltage, kNeighborNum, kBeaconRecvCounter,
                  kParentChangeCounter},
                 "A node restarts and rejoins; counters reset and neighbors "
                 "see it appear.",
                 "Transient instability while the routing tree reabsorbs the "
                 "node."});
    t.push_back({HazardEvent::kContention,
                 "contention",
                 {kMacBackoffCounter, kNoackRetransmitCounter,
                  kAckFailCounter},
                 "Severe channel contention; nodes cannot send or receive "
                 "successfully.",
                 "Link-quality degradation, often caused by environment or "
                 "co-existing signals."});
    return t;
  }();
  return kTable;
}

}  // namespace

std::span<const HazardInfo> hazard_table() { return table(); }

const HazardInfo& hazard_info(HazardEvent event) {
  for (const HazardInfo& info : table())
    if (info.event == event) return info;
  throw std::out_of_range("hazard_info: unknown hazard event");
}

std::string_view hazard_name(HazardEvent event) {
  return hazard_info(event).name;
}

HazardClass hazard_class(HazardEvent event) noexcept {
  switch (event) {
    case HazardEvent::kUnstableClock:
      return HazardClass::kEnvironment;
    case HazardEvent::kNodeLowVoltage:
      return HazardClass::kEnergy;
    case HazardEvent::kRisingNoise:
    case HazardEvent::kLinkDegradation:
    case HazardEvent::kContention:
    case HazardEvent::kPersistentDrop:
      return HazardClass::kLink;
    case HazardEvent::kKeyNodeLargeSubtree:
    case HazardEvent::kFrequentParentChange:
    case HazardEvent::kNodeFailure:
    case HazardEvent::kNodeReboot:
      return HazardClass::kRouting;
    case HazardEvent::kRoutingLoop:
    case HazardEvent::kDuplicateStorm:
      return HazardClass::kLoop;
    case HazardEvent::kQueueOverflow:
      return HazardClass::kQueue;
  }
  return HazardClass::kLink;
}

std::string_view hazard_class_name(HazardClass cls) noexcept {
  switch (cls) {
    case HazardClass::kEnvironment: return "environment";
    case HazardClass::kEnergy: return "energy";
    case HazardClass::kLink: return "link";
    case HazardClass::kRouting: return "routing";
    case HazardClass::kLoop: return "loop";
    case HazardClass::kQueue: return "queue";
  }
  return "unknown";
}

}  // namespace vn2::metrics
