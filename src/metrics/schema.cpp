#include "metrics/schema.hpp"

#include <stdexcept>

namespace vn2::metrics {

namespace {

struct MetricInfo {
  std::string_view name;
  std::string_view short_name;
  PacketType packet;
  MetricKind kind;
  MetricFamily family;
};

constexpr std::array<MetricInfo, kMetricCount> kInfo = {{
    // C1
    {"Temperature", "TMP", PacketType::kC1, MetricKind::kGauge,
     MetricFamily::kEnvironment},
    {"Humidity", "HUM", PacketType::kC1, MetricKind::kGauge,
     MetricFamily::kEnvironment},
    {"Light", "LGT", PacketType::kC1, MetricKind::kGauge,
     MetricFamily::kEnvironment},
    {"Voltage", "VOL", PacketType::kC1, MetricKind::kGauge,
     MetricFamily::kEnergy},
    {"Path_ETX", "PETX", PacketType::kC1, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Path_length", "PLEN", PacketType::kC1, MetricKind::kGauge,
     MetricFamily::kRouting},
    // C2 RSSI
    {"Neighbor_RSSI_1", "RSSI1", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_2", "RSSI2", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_3", "RSSI3", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_4", "RSSI4", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_5", "RSSI5", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_6", "RSSI6", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_7", "RSSI7", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_8", "RSSI8", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_9", "RSSI9", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_RSSI_10", "RSSI10", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    // C2 ETX
    {"Neighbor_ETX_1", "ETX1", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_2", "ETX2", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_3", "ETX3", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_4", "ETX4", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_5", "ETX5", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_6", "ETX6", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_7", "ETX7", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_8", "ETX8", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_9", "ETX9", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    {"Neighbor_ETX_10", "ETX10", PacketType::kC2, MetricKind::kGauge,
     MetricFamily::kLinkQuality},
    // C3 counters
    {"Transmit_counter", "TPC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kTraffic},
    {"Receive_counter", "RPC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kTraffic},
    {"Self_transmit_counter", "STC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kTraffic},
    {"Forward_counter", "FWC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kTraffic},
    {"Parent_change_counter", "PCC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kRouting},
    {"No_parent_counter", "NPC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kRouting},
    {"Loop_counter", "LC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kRouting},
    {"Duplicate_counter", "DC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kQueue},
    {"Overflow_drop_counter", "ODC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kQueue},
    {"NOACK_retransmit_counter", "TNARC", PacketType::kC3,
     MetricKind::kCounter, MetricFamily::kContention},
    {"Drop_packet_counter", "DPC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kQueue},
    {"MacI_backoff_counter", "MIBOC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kContention},
    {"Radio_on_time", "RODC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kRadio},
    {"Beacon_sent_counter", "BSC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kRouting},
    {"Beacon_recv_counter", "BRC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kRouting},
    {"Neighbor_num", "NBN", PacketType::kC3, MetricKind::kGauge,
     MetricFamily::kRouting},
    {"Ack_fail_counter", "AFC", PacketType::kC3, MetricKind::kCounter,
     MetricFamily::kContention},
}};

constexpr std::array<MetricId, kMetricCount> make_all() {
  std::array<MetricId, kMetricCount> ids{};
  for (std::size_t i = 0; i < kMetricCount; ++i)
    ids[i] = static_cast<MetricId>(i);
  return ids;
}
constexpr auto kAllMetrics = make_all();

const MetricInfo& info(MetricId id) noexcept { return kInfo[index_of(id)]; }

}  // namespace

MetricId metric_at(std::size_t index) {
  if (index >= kMetricCount)
    throw std::out_of_range("metric_at: index >= kMetricCount");
  return static_cast<MetricId>(index);
}

std::string_view name(MetricId id) noexcept { return info(id).name; }
std::string_view short_name(MetricId id) noexcept { return info(id).short_name; }
PacketType packet_type(MetricId id) noexcept { return info(id).packet; }
MetricKind kind(MetricId id) noexcept { return info(id).kind; }
MetricFamily family(MetricId id) noexcept { return info(id).family; }

std::string_view family_name(MetricFamily family) noexcept {
  switch (family) {
    case MetricFamily::kEnvironment: return "environment";
    case MetricFamily::kEnergy: return "energy";
    case MetricFamily::kLinkQuality: return "link-quality";
    case MetricFamily::kRouting: return "routing";
    case MetricFamily::kContention: return "contention";
    case MetricFamily::kQueue: return "queue";
    case MetricFamily::kTraffic: return "traffic";
    case MetricFamily::kRadio: return "radio";
  }
  return "unknown";
}

std::span<const MetricId> all_metrics() noexcept { return kAllMetrics; }

}  // namespace vn2::metrics
