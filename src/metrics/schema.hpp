// The VN2 metric schema: the M = 43 performance-correlated metrics injected
// into every sensor node (paper §III-C), grouped by the packet that carries
// them home:
//   C1 — sensor & routing state   (6 metrics: temperature, humidity, light,
//        voltage, path-ETX, path length),
//   C2 — neighbor table           (10 neighbor RSSI + 10 neighbor link-ETX),
//   C3 — protocol counters        (17 counters across MAC/link/network/app).
// 6 + 20 + 17 = 43 = kMetricCount.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace vn2::metrics {

inline constexpr std::size_t kMetricCount = 43;
inline constexpr std::size_t kMaxNeighbors = 10;  ///< C2 routing-table size.

/// Identifier of every injected metric. The numeric value is the column
/// index of the metric in every state vector / exceptions matrix.
enum class MetricId : std::uint8_t {
  // --- C1: sensor data + routing information -------------------------------
  kTemperature = 0,
  kHumidity,
  kLight,
  kVoltage,
  kPathEtx,
  kPathLength,
  // --- C2: routing table (up to 10 neighbors) ------------------------------
  kNeighborRssi0,  // kNeighborRssi0 + i is neighbor slot i, i < kMaxNeighbors
  kNeighborRssi1,
  kNeighborRssi2,
  kNeighborRssi3,
  kNeighborRssi4,
  kNeighborRssi5,
  kNeighborRssi6,
  kNeighborRssi7,
  kNeighborRssi8,
  kNeighborRssi9,
  kNeighborEtx0,  // kNeighborEtx0 + i is neighbor slot i
  kNeighborEtx1,
  kNeighborEtx2,
  kNeighborEtx3,
  kNeighborEtx4,
  kNeighborEtx5,
  kNeighborEtx6,
  kNeighborEtx7,
  kNeighborEtx8,
  kNeighborEtx9,
  // --- C3: protocol counters ------------------------------------------------
  kTransmitCounter,         ///< TPC — all packets put on air.
  kReceiveCounter,          ///< Packets received (data plane).
  kSelfTransmitCounter,     ///< Self-generated data packets sent.
  kForwardCounter,          ///< Packets forwarded for children.
  kParentChangeCounter,     ///< PC — routing parent switches.
  kNoParentCounter,         ///< NPC — epochs spent with no route.
  kLoopCounter,             ///< LC — routing loops detected.
  kDuplicateCounter,        ///< DC — duplicate packets seen.
  kOverflowDropCounter,     ///< Queue-overflow drops.
  kNoackRetransmitCounter,  ///< Retransmits due to missing ACK.
  kDropPacketCounter,       ///< Packets dropped after 30 retransmits.
  kMacBackoffCounter,       ///< MIBOC — CSMA backoffs (channel busy).
  kRadioOnTime,             ///< RODC — cumulative radio-on duty time.
  kBeaconSentCounter,       ///< Routing beacons sent.
  kBeaconRecvCounter,       ///< Routing beacons received.
  kNeighborNum,             ///< Current routing-table occupancy.
  kAckFailCounter,          ///< ACKs we failed to deliver as receiver.
};

/// The packet type that carries a metric to the sink.
enum class PacketType : std::uint8_t { kC1 = 1, kC2 = 2, kC3 = 3 };

/// Counters grow monotonically; gauges move both ways.
enum class MetricKind : std::uint8_t { kGauge, kCounter };

/// Semantic family, used by the root-cause interpretation engine to label
/// the rows of the representative matrix (paper §IV-C, Fig. 4 families).
enum class MetricFamily : std::uint8_t {
  kEnvironment,   ///< Temperature / humidity / light.
  kEnergy,        ///< Voltage.
  kLinkQuality,   ///< Neighbor RSSI / ETX, path ETX.
  kRouting,       ///< Parent changes, loops, path shape, beacons.
  kContention,    ///< MAC backoff, NOACK retransmits, ack failures.
  kQueue,         ///< Overflow drops, duplicates, packet drops.
  kTraffic,       ///< Transmit / receive / forward volumes.
  kRadio,         ///< Radio-on time.
};

[[nodiscard]] constexpr std::size_t index_of(MetricId id) noexcept {
  return static_cast<std::size_t>(id);
}
[[nodiscard]] MetricId metric_at(std::size_t index);  ///< Throws out_of_range.

[[nodiscard]] std::string_view name(MetricId id) noexcept;
/// Terse label used on figure axes (e.g. "LC" for Loop_counter).
[[nodiscard]] std::string_view short_name(MetricId id) noexcept;
[[nodiscard]] PacketType packet_type(MetricId id) noexcept;
[[nodiscard]] MetricKind kind(MetricId id) noexcept;
[[nodiscard]] MetricFamily family(MetricId id) noexcept;
[[nodiscard]] std::string_view family_name(MetricFamily family) noexcept;

/// All 43 ids in column order.
[[nodiscard]] std::span<const MetricId> all_metrics() noexcept;

/// Neighbor-slot helpers for the C2 block.
[[nodiscard]] constexpr MetricId neighbor_rssi(std::size_t slot) noexcept {
  return static_cast<MetricId>(index_of(MetricId::kNeighborRssi0) + slot);
}
[[nodiscard]] constexpr MetricId neighbor_etx(std::size_t slot) noexcept {
  return static_cast<MetricId>(index_of(MetricId::kNeighborEtx0) + slot);
}

}  // namespace vn2::metrics
