// Table I of the paper: the hazard-event taxonomy — which injected metrics
// correlate with which network hazard, and what the hazard does to network
// performance. The interpretation engine (src/core/interpretation.*) uses
// this table to label root-cause vectors; bench_table1_hazards reproduces
// the table by injecting each hazard in simulation and reporting the
// responding metrics.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "metrics/schema.hpp"

namespace vn2::metrics {

/// Hazard events observed in the paper's system (Table I plus the events
/// exercised in the evaluation: node failure/reboot, contention, loops).
enum class HazardEvent : std::uint8_t {
  kUnstableClock,          ///< Temperature swing destabilizes hardware clock.
  kNodeLowVoltage,         ///< Node stops working below 2.8 V.
  kKeyNodeLargeSubtree,    ///< Many children make a node a single point of failure.
  kRisingNoise,            ///< Neighbor noise floor rises; RSSI degrades.
  kQueueOverflow,          ///< Receive queue overflows; incoming packets drop.
  kLinkDegradation,        ///< Sender↔receiver link quality collapses.
  kFrequentParentChange,   ///< Routing instability / link dynamics.
  kRoutingLoop,            ///< A forwarding loop forms.
  kPersistentDrop,         ///< Packet dropped after 30 retransmissions.
  kDuplicateStorm,         ///< Duplicate packets flood the network.
  kNodeFailure,            ///< A node disappears (testbed scenario event).
  kNodeReboot,             ///< A node restarts (testbed scenario event).
  kContention,             ///< Severe channel contention / jamming.
};

inline constexpr std::size_t kHazardCount = 13;

/// Coarse manifestation class of a hazard. Several distinct hazards are
/// indistinguishable at the metric level (a jammer and a rising noise floor
/// both read as "the channel got worse"); diagnosis scoring matches at this
/// level, mirroring how the paper groups its explanations ("link quality
/// degradation ... may be caused by environment factors").
enum class HazardClass : std::uint8_t {
  kEnvironment,  ///< Clock drift / sensor-visible environment change.
  kEnergy,       ///< Battery / voltage trouble.
  kLink,         ///< Channel degradation: noise, fading, contention, drops.
  kRouting,      ///< Topology churn: failures, reboots, parent flapping.
  kLoop,         ///< Forwarding loops and their duplicate storms.
  kQueue,        ///< Buffer overflow / congestion.
};

[[nodiscard]] HazardClass hazard_class(HazardEvent event) noexcept;
[[nodiscard]] std::string_view hazard_class_name(HazardClass cls) noexcept;

struct HazardInfo {
  HazardEvent event;
  std::string_view name;
  /// Metrics whose variation is the hazard's primary signature (Table I col 1).
  std::vector<MetricId> signature_metrics;
  /// "Potential hazard events" column.
  std::string_view description;
  /// "Related network performance" column.
  std::string_view performance_impact;
};

/// The full taxonomy in Table I order (plus evaluation events).
[[nodiscard]] std::span<const HazardInfo> hazard_table();

[[nodiscard]] const HazardInfo& hazard_info(HazardEvent event);
[[nodiscard]] std::string_view hazard_name(HazardEvent event);

}  // namespace vn2::metrics
