// Compression-factor (rank) selection — the Fig. 3(b) procedure.
//
// For each candidate r the exceptions matrix is factorized, the
// approximation accuracy α = ‖E − WΨ‖ (Definition 1) is computed with the
// original W and again with the sparsified W̄ (Algorithm 2), and the r at
// which the two curves stay close while α has left its small-r blow-up is
// chosen. The paper picks r = 25 for CitySee and r = 10 for the testbed.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "nmf/nmf.hpp"
#include "nmf/sparsify.hpp"

namespace vn2::nmf {

struct RankPoint {
  std::size_t rank = 0;
  double accuracy_original = 0.0;  ///< α with the dense W.
  double accuracy_sparse = 0.0;    ///< α with the sparsified W̄.
};

struct RankSweepOptions {
  NmfOptions nmf;
  SparsifyOptions sparsify;
};

/// Factorizes E at every rank in `ranks` and records both accuracy curves.
/// Ranks outside [1, min(n, m)] are skipped.
std::vector<RankPoint> rank_sweep(const linalg::Matrix& e,
                                  const std::vector<std::size_t>& ranks,
                                  const RankSweepOptions& options = {});

struct RankChoice {
  std::size_t rank = 0;
  /// Index into the sweep the choice came from.
  std::size_t sweep_index = 0;
};

/// Picks the compression factor from a sweep following the paper's two
/// criteria: (1) avoid the small-r regime where α degrades steeply — detected
/// as the first rank after which the marginal improvement per added rank
/// drops below `knee_fraction` of the sweep's largest marginal improvement;
/// (2) avoid the large-r regime where the sparse curve diverges from the
/// dense one by more than `divergence_fraction` of α.
/// Throws std::invalid_argument on an empty sweep.
RankChoice choose_rank(const std::vector<RankPoint>& sweep,
                       double knee_fraction = 0.10,
                       double divergence_fraction = 0.12);

}  // namespace vn2::nmf
