#include "nmf/rank_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/parallel.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::nmf {

std::vector<RankPoint> rank_sweep(const linalg::Matrix& e,
                                  const std::vector<std::size_t>& ranks,
                                  const RankSweepOptions& options) {
  const std::size_t max_rank = std::min(e.rows(), e.cols());
  std::vector<std::size_t> valid;
  valid.reserve(ranks.size());
  for (std::size_t r : ranks)
    if (r >= 1 && r <= max_rank) valid.push_back(r);
  VN2_ASSERT(valid.size() <= ranks.size(),
             "rank_sweep: candidate filter must not invent ranks");

  // Each rank's factorization is seeded independently (the golden-ratio
  // stride decorrelates initializations while staying deterministic), so
  // the sweep is embarrassingly parallel: every slot is written by exactly
  // one rank and the output order matches the serial loop.
  std::vector<RankPoint> sweep(valid.size());
  VN2_SPAN("nmf.rank_sweep");
  VN2_COUNT_N("nmf.rank_sweep.candidates", valid.size());
  core::parallel_for(0, valid.size(), 1, [&](std::size_t index) {
    const std::size_t r = valid[index];
    NmfOptions nmf_options = options.nmf;
    nmf_options.seed = options.nmf.seed + r * 0x9e3779b9ULL;
    NmfResult model = factorize(e, r, nmf_options);
    RankPoint point;
    point.rank = r;
    point.accuracy_original = model.approximation_accuracy(e);
    SparsifyResult sparse = sparsify(model.w, options.sparsify);
    point.accuracy_sparse =
        approximation_accuracy(e, sparse.w_sparse, model.psi);
    sweep[index] = point;
  });
#if VN2_CONTRACTS_ACTIVE
  for (const RankPoint& point : sweep)
    VN2_ASSERT(point.rank >= 1 && point.rank <= max_rank,
               "rank_sweep: every swept rank must be in [1, min(n, m)]");
#endif
  return sweep;
}

RankChoice choose_rank(const std::vector<RankPoint>& sweep,
                       double knee_fraction, double divergence_fraction) {
  VN2_CHECK(!sweep.empty(), "choose_rank: empty sweep");

  std::vector<RankPoint> sorted = sweep;
  std::sort(sorted.begin(), sorted.end(),
            [](const RankPoint& a, const RankPoint& b) { return a.rank < b.rank; });
  const std::size_t n = sorted.size();
  if (n == 1) return {sorted.front().rank, 0};

  // Floor (paper criterion 1): avoid the small-r regime where α blows up.
  // The steep regime ends at the first point whose marginal α improvement
  // per added rank drops below knee_fraction of the largest improvement.
  std::vector<double> improvement(n, 0.0);
  double best_improvement = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double dr = static_cast<double>(sorted[i].rank - sorted[i - 1].rank);
    improvement[i] =
        (sorted[i - 1].accuracy_original - sorted[i].accuracy_original) /
        std::max(dr, 1.0);
    best_improvement = std::max(best_improvement, improvement[i]);
  }
  std::size_t floor_index = n - 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (improvement[i] < knee_fraction * best_improvement) {
      floor_index = i;
      break;
    }
  }

  // Ceiling (paper criterion 2): stop before the sparsified W̄ diverges
  // from the dense W. The gap is measured relative to the dense accuracy,
  // and "diverged" is scale-free: the relative gap has grown past 4× its
  // small-r minimum (with divergence_fraction as an absolute cap). This is
  // the paper's reading of Fig. 3(b) — the sparse curve departs visibly
  // around r ≈ 30, so it settles one notch lower, at 25.
  std::vector<double> rel_gap(n, 0.0);
  double min_gap = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::max(sorted[i].accuracy_original, 1e-30);
    rel_gap[i] =
        (sorted[i].accuracy_sparse - sorted[i].accuracy_original) / scale;
    if (rel_gap[i] > 0.0) min_gap = std::min(min_gap, rel_gap[i]);
  }
  if (!std::isfinite(min_gap)) min_gap = 0.0;
  const double gap_threshold =
      std::min(divergence_fraction, 4.0 * std::max(min_gap, 1e-6));
  std::size_t ceiling_index = 0;
  bool any_admissible = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (rel_gap[i] <= gap_threshold) {
      ceiling_index = i;
      any_admissible = true;
    }
  }
  if (!any_admissible) ceiling_index = floor_index;  // Sparsity never behaves.

  // Reconcile the two criteria exactly as the paper does. When α is still
  // improving at the divergence boundary (floor past ceiling), sparsity
  // decides — that is how the paper lands on 25 with its α still falling at
  // 40. When α flattens before sparsity degrades (floor below ceiling),
  // Occam's razor decides: extra rank buys nothing, stop at the knee.
  const std::size_t choice = std::min(floor_index, ceiling_index);
  VN2_ASSERT(choice < n, "choose_rank: chosen index must be inside the sweep");
  return {sorted[choice].rank, choice};
}

}  // namespace vn2::nmf
