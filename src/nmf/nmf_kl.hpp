// Kullback–Leibler NMF — the second of Lee & Seung's (NIPS 2001) objectives.
//
// The paper's Algorithm 1 minimizes the Euclidean distance ‖E − WΨ‖; the
// same reference also derives multiplicative updates for the generalized KL
// divergence
//
//     D(E ‖ WΨ) = Σ_ij ( E_ij · log(E_ij / (WΨ)_ij) − E_ij + (WΨ)_ij ),
//
// which weights reconstruction error relative to magnitude — small counters
// matter as much as large ones. The ablation bench compares both on the
// exceptions matrix; this module provides the KL variant with the same API
// shape as nmf::factorize.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace vn2::nmf {

struct KlNmfOptions {
  std::size_t max_iterations = 500;
  double relative_tolerance = 1e-6;
  std::uint64_t seed = 0x5eed0002ULL;
  bool record_objective = true;
};

struct KlNmfResult {
  linalg::Matrix w;    ///< n × r.
  linalg::Matrix psi;  ///< r × m.
  std::vector<double> objective_history;  ///< D(E ‖ WΨ) per iteration.
  std::size_t iterations = 0;
  bool converged = false;
};

/// Generalized KL divergence D(E ‖ A). Entries where E == 0 contribute
/// A_ij; entries where A == 0 are floored to keep the divergence finite.
double kl_divergence(const linalg::Matrix& e, const linalg::Matrix& approx);

/// One KL multiplicative update sweep (Ψ then W), for step-wise testing of
/// the monotonicity property.
void kl_multiplicative_update(const linalg::Matrix& e, linalg::Matrix& w,
                              linalg::Matrix& psi);

/// Factorizes non-negative E (n×m) as W(n×r)·Ψ(r×m) under the KL objective.
/// Throws std::invalid_argument under the same conditions as nmf::factorize.
KlNmfResult factorize_kl(const linalg::Matrix& e, std::size_t rank,
                         const KlNmfOptions& options = {});

}  // namespace vn2::nmf
