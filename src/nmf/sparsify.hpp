// Algorithm 2 of the paper: "Basis Matrix Sparse Process".
//
// The correlation-strength matrix W is normalized, its entries are sorted in
// descending order, and entries are copied into a sparse W̄ largest-first
// until W̄ retains a target fraction (paper: 90%) of W's mass. The effect is
// that each exception row of E ends up explained by only a few root-cause
// rows of Ψ — the Occam's-razor constraint the paper uses when picking the
// compression factor r.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace vn2::nmf {

struct SparsifyOptions {
  /// Fraction of ‖W‖ mass the sparse matrix must retain (paper: 0.9).
  double retained_mass = 0.9;
  /// Normalize W rows to unit L1 before selection, as Algorithm 2 step 1.
  bool normalize_rows = true;
};

struct SparsifyResult {
  linalg::Matrix w_sparse;     ///< Same shape as W; pruned entries are 0.
  std::size_t kept_entries = 0;
  double retained_fraction = 0.0;  ///< Achieved ‖W̄‖₁ / ‖W‖₁.
};

/// Returns the sparsified W̄. Mass is measured in entrywise L1, which is the
/// natural norm for the non-negative W produced by NMF.
/// Throws std::invalid_argument if retained_mass is outside (0, 1].
SparsifyResult sparsify(const linalg::Matrix& w, const SparsifyOptions& options = {});

/// Average number of non-zero root causes used per exception row of W̄ —
/// the sparsity statistic reported alongside Fig. 3(c).
double mean_active_causes(const linalg::Matrix& w_sparse,
                          double threshold = 0.0);

}  // namespace vn2::nmf
