// Non-negative Matrix Factorization — the analytical core of VN2.
//
// Implements the paper's Algorithm 1: Lee–Seung multiplicative updates for
// the Euclidean objective ‖E − W·Ψ‖_F (Seung & Lee, NIPS 2001; the paper's
// Theorem 1 is their monotonicity result and is property-tested here).
//
// Naming follows the paper: the n×m input E holds one network state per row
// (n states, m = 43 metrics); W is n×r "correlation strength"; Ψ (`psi`) is
// the r×m "representative matrix" whose rows are root-cause vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace vn2::nmf {

struct NmfOptions {
  std::size_t max_iterations = 500;
  /// Stop once the relative objective improvement per iteration falls below
  /// this value.
  double relative_tolerance = 1e-6;
  /// Seed for the random initialization of W and Ψ.
  std::uint64_t seed = 0x5eed0001ULL;
  /// Record ‖E − WΨ‖_F after every iteration (cheap at VN2 sizes and used by
  /// the convergence tests and benchmarks).
  bool record_objective = true;
};

struct NmfResult {
  linalg::Matrix w;    ///< n × r correlation strengths.
  linalg::Matrix psi;  ///< r × m representative matrix (root-cause rows).
  std::vector<double> objective_history;  ///< ‖E − WΨ‖_F per iteration.
  std::size_t iterations = 0;
  bool converged = false;

  /// Approximation accuracy α = ‖E − WΨ‖ (paper, Definition 1).
  [[nodiscard]] double approximation_accuracy(const linalg::Matrix& e) const;
};

/// Preallocated scratch for the multiplicative-update sweep and the
/// objective evaluation. `factorize` keeps one instance across all
/// iterations so the hot loop performs no heap allocation; buffers are
/// (re)sized only when the problem shape changes, so a default-constructed
/// Workspace is always valid. Not thread-safe: one Workspace per
/// concurrent factorization.
struct Workspace {
  linalg::Matrix wt;        ///< Wᵀ (r×n).
  linalg::Matrix wt_e;      ///< WᵀE (r×m), Ψ-update numerator.
  linalg::Matrix wtw;       ///< WᵀW (r×r).
  linalg::Matrix wtw_psi;   ///< WᵀW·Ψ (r×m), Ψ-update denominator.
  linalg::Matrix psit;      ///< Ψᵀ (m×r).
  linalg::Matrix e_psit;    ///< EΨᵀ (n×r), W-update numerator.
  linalg::Matrix psi_psit;  ///< ΨΨᵀ (r×r).
  linalg::Matrix w_denom;   ///< W·ΨΨᵀ (n×r), W-update denominator.
  linalg::Matrix w_psi;     ///< WΨ (n×m), reconstruction for the objective.
};

/// Factorizes non-negative E (n×m) as W(n×r)·Ψ(r×m).
/// Throws std::invalid_argument if E has negative entries, is empty, or if
/// r == 0 or r > min(n, m).
NmfResult factorize(const linalg::Matrix& e, std::size_t rank,
                    const NmfOptions& options = {});

/// One multiplicative update sweep (Ψ then W), exposed so tests can assert
/// Theorem 1 (monotone non-increasing objective) step by step.
void multiplicative_update(const linalg::Matrix& e, linalg::Matrix& w,
                           linalg::Matrix& psi);

/// Workspace form of the update sweep: identical results, zero allocation
/// once the workspace is warm. This is what `factorize` runs.
void multiplicative_update(const linalg::Matrix& e, linalg::Matrix& w,
                           linalg::Matrix& psi, Workspace& workspace);

/// Approximation accuracy α = ‖E − WΨ‖_F for arbitrary factors.
double approximation_accuracy(const linalg::Matrix& e, const linalg::Matrix& w,
                              const linalg::Matrix& psi);

/// Workspace form: reuses the reconstruction buffer.
double approximation_accuracy(const linalg::Matrix& e, const linalg::Matrix& w,
                              const linalg::Matrix& psi, Workspace& workspace);

}  // namespace vn2::nmf
