#include "nmf/nmf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "linalg/random.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::nmf {

using linalg::Matrix;

namespace {

// Guards the multiplicative-update denominators. Lee–Seung updates keep
// strictly positive factors positive; the epsilon only matters when a factor
// entry collapses to numerical zero, where it pins the entry at zero instead
// of producing NaN.
constexpr double kDenominatorFloor = 1e-12;

/// Reallocates only when the wanted shape differs — the workspace pattern:
/// warm buffers are reused allocation-free across iterations. Each actual
/// reallocation is tallied so bench records can prove the warm path stays
/// allocation-free: in steady state these counters must not move.
void ensure_shape(Matrix& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) {
    VN2_COUNT("nmf.workspace.reallocs");
    VN2_COUNT_N("nmf.workspace.alloc_bytes", rows * cols * sizeof(double));
    m = Matrix(rows, cols);
  }
}

}  // namespace

double approximation_accuracy(const Matrix& e, const Matrix& w,
                              const Matrix& psi) {
  Workspace workspace;
  return approximation_accuracy(e, w, psi, workspace);
}

double approximation_accuracy(const Matrix& e, const Matrix& w,
                              const Matrix& psi, Workspace& workspace) {
  ensure_shape(workspace.w_psi, e.rows(), e.cols());
  linalg::matmul_into(w, psi, workspace.w_psi);
  return linalg::frobenius_distance(e, workspace.w_psi);
}

double NmfResult::approximation_accuracy(const Matrix& e) const {
  return nmf::approximation_accuracy(e, w, psi);
}

void multiplicative_update(const Matrix& e, Matrix& w, Matrix& psi) {
  Workspace workspace;
  multiplicative_update(e, w, psi, workspace);
}

void multiplicative_update(const Matrix& e, Matrix& w, Matrix& psi,
                           Workspace& ws) {
  VN2_CHECK(w.rows() == e.rows() && psi.cols() == e.cols() &&
                w.cols() == psi.rows(),
            "multiplicative_update: shape mismatch");
  const std::size_t n = e.rows(), m = e.cols(), r = w.cols();

  // Ψ ← Ψ ∘ (WᵀE) ⊘ (WᵀWΨ)
  {
    ensure_shape(ws.wt, r, n);
    ensure_shape(ws.wt_e, r, m);
    ensure_shape(ws.wtw, r, r);
    ensure_shape(ws.wtw_psi, r, m);
    linalg::transpose_into(w, ws.wt);
    linalg::matmul_into(ws.wt, e, ws.wt_e);
    linalg::matmul_into(ws.wt, w, ws.wtw);
    linalg::matmul_into(ws.wtw, psi, ws.wtw_psi);
    for (std::size_t i = 0; i < psi.size(); ++i) {
      const double denom = std::max(ws.wtw_psi.data()[i], kDenominatorFloor);
      psi.data()[i] *= ws.wt_e.data()[i] / denom;
    }
  }
  // W ← W ∘ (EΨᵀ) ⊘ (WΨΨᵀ)
  {
    ensure_shape(ws.psit, m, r);
    ensure_shape(ws.e_psit, n, r);
    ensure_shape(ws.psi_psit, r, r);
    ensure_shape(ws.w_denom, n, r);
    linalg::transpose_into(psi, ws.psit);
    linalg::matmul_into(e, ws.psit, ws.e_psit);
    linalg::matmul_into(psi, ws.psit, ws.psi_psit);
    linalg::matmul_into(w, ws.psi_psit, ws.w_denom);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double denom = std::max(ws.w_denom.data()[i], kDenominatorFloor);
      w.data()[i] *= ws.e_psit.data()[i] / denom;
    }
  }
  // The multiplicative update only scales entries by non-negative ratios,
  // so non-negativity of the factors is preserved — unless a caller fed in
  // a factor with a negative entry, which this contract surfaces.
  VN2_ASSERT(linalg::is_nonnegative(w),
             "multiplicative_update: W must stay non-negative");
  VN2_ASSERT(linalg::is_nonnegative(psi),
             "multiplicative_update: Psi must stay non-negative");
}

NmfResult factorize(const Matrix& e, std::size_t rank,
                    const NmfOptions& options) {
  if (e.empty()) throw std::invalid_argument("nmf: empty input matrix");
  if (!linalg::is_nonnegative(e))
    throw std::invalid_argument("nmf: input matrix must be non-negative");
  VN2_CHECK(rank >= 1 && rank <= std::min(e.rows(), e.cols()),
            "nmf: rank must be in [1, min(n, m)]");

  VN2_SPAN("nmf.factorize");
  VN2_COUNT("nmf.factorizations");
  NmfResult result;
  // Initialize away from zero: a zero entry is a fixed point of the
  // multiplicative update and would freeze part of the factorization.
  result.w = linalg::random_uniform_matrix(e.rows(), rank, options.seed,
                                           0.05, 1.0);
  result.psi = linalg::random_uniform_matrix(rank, e.cols(),
                                             options.seed ^ 0x9e3779b97f4a7c15ULL,
                                             0.05, 1.0);

  // One workspace serves every iteration: after the first sweep the hot
  // loop runs allocation-free.
  Workspace workspace;
  double previous = approximation_accuracy(e, result.w, result.psi, workspace);
  if (options.record_objective) result.objective_history.push_back(previous);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    multiplicative_update(e, result.w, result.psi, workspace);
    result.iterations = it + 1;
    const double current =
        approximation_accuracy(e, result.w, result.psi, workspace);
    if (options.record_objective) result.objective_history.push_back(current);
    const double scale = std::max(previous, 1e-30);
    if ((previous - current) / scale < options.relative_tolerance) {
      result.converged = true;
      break;
    }
    previous = current;
  }
  VN2_COUNT_N("nmf.iterations", result.iterations);
  VN2_GAUGE_SET("nmf.last_objective", previous);
  return result;
}

}  // namespace vn2::nmf
