#include "nmf/nmf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "linalg/random.hpp"
#include "telemetry/telemetry.hpp"

namespace vn2::nmf {

using linalg::Matrix;

namespace {

// Guards the multiplicative-update denominators. Lee–Seung updates keep
// strictly positive factors positive; the epsilon only matters when a factor
// entry collapses to numerical zero, where it pins the entry at zero instead
// of producing NaN.
constexpr double kDenominatorFloor = 1e-12;

}  // namespace

double approximation_accuracy(const Matrix& e, const Matrix& w,
                              const Matrix& psi) {
  return linalg::frobenius_distance(e, linalg::matmul(w, psi));
}

double NmfResult::approximation_accuracy(const Matrix& e) const {
  return nmf::approximation_accuracy(e, w, psi);
}

void multiplicative_update(const Matrix& e, Matrix& w, Matrix& psi) {
  VN2_REQUIRE(w.rows() == e.rows() && psi.cols() == e.cols() &&
                  w.cols() == psi.rows(),
              "multiplicative_update: shape mismatch");
  if (w.rows() != e.rows() || psi.cols() != e.cols() ||
      w.cols() != psi.rows())
    throw std::invalid_argument("multiplicative_update: shape mismatch");

  // Ψ ← Ψ ∘ (WᵀE) ⊘ (WᵀWΨ)
  {
    const Matrix wt = linalg::transpose(w);
    const Matrix numerator = linalg::matmul(wt, e);
    const Matrix denominator =
        linalg::matmul(linalg::matmul(wt, w), psi);
    for (std::size_t i = 0; i < psi.size(); ++i) {
      const double denom = std::max(denominator.data()[i], kDenominatorFloor);
      psi.data()[i] *= numerator.data()[i] / denom;
    }
  }
  // W ← W ∘ (EΨᵀ) ⊘ (WΨΨᵀ)
  {
    const Matrix psit = linalg::transpose(psi);
    const Matrix numerator = linalg::matmul(e, psit);
    const Matrix denominator =
        linalg::matmul(w, linalg::matmul(psi, psit));
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double denom = std::max(denominator.data()[i], kDenominatorFloor);
      w.data()[i] *= numerator.data()[i] / denom;
    }
  }
  // The multiplicative update only scales entries by non-negative ratios,
  // so non-negativity of the factors is preserved — unless a caller fed in
  // a factor with a negative entry, which this contract surfaces.
  VN2_ASSERT(linalg::is_nonnegative(w),
             "multiplicative_update: W must stay non-negative");
  VN2_ASSERT(linalg::is_nonnegative(psi),
             "multiplicative_update: Psi must stay non-negative");
}

NmfResult factorize(const Matrix& e, std::size_t rank,
                    const NmfOptions& options) {
  if (e.empty()) throw std::invalid_argument("nmf: empty input matrix");
  if (!linalg::is_nonnegative(e))
    throw std::invalid_argument("nmf: input matrix must be non-negative");
  VN2_REQUIRE(rank >= 1 && rank <= std::min(e.rows(), e.cols()),
              "nmf: rank must be in [1, min(n, m)]");
  if (rank == 0 || rank > std::min(e.rows(), e.cols()))
    throw std::invalid_argument("nmf: rank must be in [1, min(n, m)]");

  VN2_SPAN("nmf.factorize");
  VN2_COUNT("nmf.factorizations");
  NmfResult result;
  // Initialize away from zero: a zero entry is a fixed point of the
  // multiplicative update and would freeze part of the factorization.
  result.w = linalg::random_uniform_matrix(e.rows(), rank, options.seed,
                                           0.05, 1.0);
  result.psi = linalg::random_uniform_matrix(rank, e.cols(),
                                             options.seed ^ 0x9e3779b97f4a7c15ULL,
                                             0.05, 1.0);

  double previous = approximation_accuracy(e, result.w, result.psi);
  if (options.record_objective) result.objective_history.push_back(previous);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    multiplicative_update(e, result.w, result.psi);
    result.iterations = it + 1;
    const double current = approximation_accuracy(e, result.w, result.psi);
    if (options.record_objective) result.objective_history.push_back(current);
    const double scale = std::max(previous, 1e-30);
    if ((previous - current) / scale < options.relative_tolerance) {
      result.converged = true;
      break;
    }
    previous = current;
  }
  VN2_COUNT_N("nmf.iterations", result.iterations);
  VN2_GAUGE_SET("nmf.last_objective", previous);
  return result;
}

}  // namespace vn2::nmf
