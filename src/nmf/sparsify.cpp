#include "nmf/sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vn2::nmf {

using linalg::Matrix;

SparsifyResult sparsify(const Matrix& w, const SparsifyOptions& options) {
  if (options.retained_mass <= 0.0 || options.retained_mass > 1.0)
    throw std::invalid_argument("sparsify: retained_mass must be in (0, 1]");

  // Step 1: normalization. Each exception row is scaled to unit L1 so that
  // rows with large absolute strengths do not monopolize the selection.
  Matrix normalized = w;
  if (options.normalize_rows) {
    for (std::size_t i = 0; i < normalized.rows(); ++i) {
      auto row = normalized.row(i);
      double mass = 0.0;
      for (double x : row) mass += std::abs(x);
      if (mass > 0.0)
        for (double& x : row) x /= mass;
    }
  }

  // Step 2: sort all entries in descending order of magnitude.
  std::vector<std::size_t> order(normalized.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(normalized.data()[a]) > std::abs(normalized.data()[b]);
  });

  const double total_mass = linalg::entrywise_l1(normalized);

  // Steps 3–6: move largest entries into W̄ until ‖W̄‖ ≥ retained_mass·‖W‖.
  SparsifyResult result;
  result.w_sparse = Matrix(w.rows(), w.cols(), 0.0);
  double kept_mass = 0.0;
  const double target = options.retained_mass * total_mass;
  for (std::size_t idx : order) {
    if (kept_mass >= target) break;
    const double value = normalized.data()[idx];
    if (value == 0.0) break;  // Only zeros remain.
    // Copy the *original* (un-normalized) value: normalization only steers
    // the selection, the surviving strengths keep their physical scale.
    result.w_sparse.data()[idx] = w.data()[idx];
    kept_mass += std::abs(value);
    ++result.kept_entries;
  }
  result.retained_fraction = total_mass > 0.0 ? kept_mass / total_mass : 1.0;
  return result;
}

double mean_active_causes(const Matrix& w_sparse, double threshold) {
  if (w_sparse.rows() == 0) return 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < w_sparse.size(); ++i)
    if (std::abs(w_sparse.data()[i]) > threshold) ++active;
  return static_cast<double>(active) / static_cast<double>(w_sparse.rows());
}

}  // namespace vn2::nmf
