#include "nmf/nmf_kl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/random.hpp"

namespace vn2::nmf {

using linalg::Matrix;

namespace {
constexpr double kFloor = 1e-12;
}  // namespace

double kl_divergence(const Matrix& e, const Matrix& approx) {
  if (e.rows() != approx.rows() || e.cols() != approx.cols())
    throw std::invalid_argument("kl_divergence: shape mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    const double v = e.data()[i];
    const double a = std::max(approx.data()[i], kFloor);
    if (v > 0.0) total += v * std::log(v / a) - v + a;
    else total += a;
  }
  return total;
}

void kl_multiplicative_update(const Matrix& e, Matrix& w, Matrix& psi) {
  if (w.rows() != e.rows() || psi.cols() != e.cols() ||
      w.cols() != psi.rows())
    throw std::invalid_argument("kl_multiplicative_update: shape mismatch");

  const std::size_t n = e.rows(), m = e.cols(), r = w.cols();

  // Ψ_aj ← Ψ_aj · ( Σ_i W_ia · E_ij / (WΨ)_ij ) / ( Σ_i W_ia )
  {
    const Matrix wp = linalg::matmul(w, psi);
    Matrix numerator(r, m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const double ratio = e(i, j) / std::max(wp(i, j), kFloor);
        // ratio is 0 only when e(i,j) is exactly 0: factorize_kl rejects
        // negative input and wp is floored at kFloor, so the skip is exact
        // (adds 0) and cannot mask a NaN or Inf.
        // vn2-lint: allow(zero-skip-kernel)
        if (ratio == 0.0) continue;
        for (std::size_t a = 0; a < r; ++a)
          numerator(a, j) += w(i, a) * ratio;
      }
    }
    std::vector<double> column_sums(r, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t a = 0; a < r; ++a) column_sums[a] += w(i, a);
    for (std::size_t a = 0; a < r; ++a) {
      const double denom = std::max(column_sums[a], kFloor);
      for (std::size_t j = 0; j < m; ++j)
        psi(a, j) *= numerator(a, j) / denom;
    }
  }

  // W_ia ← W_ia · ( Σ_j Ψ_aj · E_ij / (WΨ)_ij ) / ( Σ_j Ψ_aj )
  {
    const Matrix wp = linalg::matmul(w, psi);
    Matrix numerator(n, r, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const double ratio = e(i, j) / std::max(wp(i, j), kFloor);
        // Exact skip, same argument as the Ψ update above.
        // vn2-lint: allow(zero-skip-kernel)
        if (ratio == 0.0) continue;
        for (std::size_t a = 0; a < r; ++a)
          numerator(i, a) += psi(a, j) * ratio;
      }
    }
    std::vector<double> row_sums(r, 0.0);
    for (std::size_t a = 0; a < r; ++a)
      for (std::size_t j = 0; j < m; ++j) row_sums[a] += psi(a, j);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t a = 0; a < r; ++a) {
        const double denom = std::max(row_sums[a], kFloor);
        w(i, a) *= numerator(i, a) / denom;
      }
    }
  }
}

KlNmfResult factorize_kl(const Matrix& e, std::size_t rank,
                         const KlNmfOptions& options) {
  if (e.empty()) throw std::invalid_argument("nmf_kl: empty input matrix");
  if (!linalg::is_nonnegative(e))
    throw std::invalid_argument("nmf_kl: input matrix must be non-negative");
  if (rank == 0 || rank > std::min(e.rows(), e.cols()))
    throw std::invalid_argument("nmf_kl: rank must be in [1, min(n, m)]");

  KlNmfResult result;
  result.w = linalg::random_uniform_matrix(e.rows(), rank, options.seed,
                                           0.05, 1.0);
  result.psi = linalg::random_uniform_matrix(
      rank, e.cols(), options.seed ^ 0x9e3779b97f4a7c15ULL, 0.05, 1.0);

  double previous = kl_divergence(e, linalg::matmul(result.w, result.psi));
  if (options.record_objective) result.objective_history.push_back(previous);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    kl_multiplicative_update(e, result.w, result.psi);
    result.iterations = it + 1;
    const double current =
        kl_divergence(e, linalg::matmul(result.w, result.psi));
    if (options.record_objective) result.objective_history.push_back(current);
    const double scale = std::max(std::abs(previous), 1e-30);
    if ((previous - current) / scale < options.relative_tolerance) {
      result.converged = true;
      break;
    }
    previous = current;
  }
  return result;
}

}  // namespace vn2::nmf
