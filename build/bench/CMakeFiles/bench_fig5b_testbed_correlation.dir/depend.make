# Empty dependencies file for bench_fig5b_testbed_correlation.
# This may be replaced when dependencies are built.
