file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_estimation.dir/bench_common.cpp.o"
  "CMakeFiles/bench_perf_estimation.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_perf_estimation.dir/perf_estimation.cpp.o"
  "CMakeFiles/bench_perf_estimation.dir/perf_estimation.cpp.o.d"
  "bench_perf_estimation"
  "bench_perf_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
