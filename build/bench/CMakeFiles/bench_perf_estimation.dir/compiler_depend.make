# Empty compiler generated dependencies file for bench_perf_estimation.
# This may be replaced when dependencies are built.
