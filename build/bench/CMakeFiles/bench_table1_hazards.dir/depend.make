# Empty dependencies file for bench_table1_hazards.
# This may be replaced when dependencies are built.
