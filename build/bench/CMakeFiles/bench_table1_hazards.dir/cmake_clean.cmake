file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_hazards.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table1_hazards.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table1_hazards.dir/table1_hazards.cpp.o"
  "CMakeFiles/bench_table1_hazards.dir/table1_hazards.cpp.o.d"
  "bench_table1_hazards"
  "bench_table1_hazards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hazards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
