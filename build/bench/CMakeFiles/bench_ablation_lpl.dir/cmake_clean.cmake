file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lpl.dir/ablation_lpl.cpp.o"
  "CMakeFiles/bench_ablation_lpl.dir/ablation_lpl.cpp.o.d"
  "CMakeFiles/bench_ablation_lpl.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_lpl.dir/bench_common.cpp.o.d"
  "bench_ablation_lpl"
  "bench_ablation_lpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
