# Empty dependencies file for bench_ablation_lpl.
# This may be replaced when dependencies are built.
