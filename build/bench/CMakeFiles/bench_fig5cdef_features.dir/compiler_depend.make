# Empty compiler generated dependencies file for bench_fig5cdef_features.
# This may be replaced when dependencies are built.
