file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5cdef_features.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig5cdef_features.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig5cdef_features.dir/fig5cdef_features.cpp.o"
  "CMakeFiles/bench_fig5cdef_features.dir/fig5cdef_features.cpp.o.d"
  "bench_fig5cdef_features"
  "bench_fig5cdef_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5cdef_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
