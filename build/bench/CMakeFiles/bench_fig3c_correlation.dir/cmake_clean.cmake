file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3c_correlation.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig3c_correlation.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig3c_correlation.dir/fig3c_correlation.cpp.o"
  "CMakeFiles/bench_fig3c_correlation.dir/fig3c_correlation.cpp.o.d"
  "bench_fig3c_correlation"
  "bench_fig3c_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3c_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
