# Empty compiler generated dependencies file for bench_fig3c_correlation.
# This may be replaced when dependencies are built.
