file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6bc_episode.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig6bc_episode.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig6bc_episode.dir/fig6bc_episode.cpp.o"
  "CMakeFiles/bench_fig6bc_episode.dir/fig6bc_episode.cpp.o.d"
  "bench_fig6bc_episode"
  "bench_fig6bc_episode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6bc_episode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
