# Empty dependencies file for bench_fig6bc_episode.
# This may be replaced when dependencies are built.
