file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5g_event_signatures.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig5g_event_signatures.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig5g_event_signatures.dir/fig5g_event_signatures.cpp.o"
  "CMakeFiles/bench_fig5g_event_signatures.dir/fig5g_event_signatures.cpp.o.d"
  "bench_fig5g_event_signatures"
  "bench_fig5g_event_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5g_event_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
