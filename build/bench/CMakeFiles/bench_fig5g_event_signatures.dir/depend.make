# Empty dependencies file for bench_fig5g_event_signatures.
# This may be replaced when dependencies are built.
