# Empty dependencies file for bench_perf_nmf.
# This may be replaced when dependencies are built.
