file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_nmf.dir/perf_nmf.cpp.o"
  "CMakeFiles/bench_perf_nmf.dir/perf_nmf.cpp.o.d"
  "bench_perf_nmf"
  "bench_perf_nmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_nmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
