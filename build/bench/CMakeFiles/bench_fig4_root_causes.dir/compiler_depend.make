# Empty compiler generated dependencies file for bench_fig4_root_causes.
# This may be replaced when dependencies are built.
