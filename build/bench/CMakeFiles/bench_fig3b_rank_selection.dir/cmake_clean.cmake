file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_rank_selection.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig3b_rank_selection.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig3b_rank_selection.dir/fig3b_rank_selection.cpp.o"
  "CMakeFiles/bench_fig3b_rank_selection.dir/fig3b_rank_selection.cpp.o.d"
  "bench_fig3b_rank_selection"
  "bench_fig3b_rank_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_rank_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
