
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cpp" "bench/CMakeFiles/bench_fig3b_rank_selection.dir/bench_common.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3b_rank_selection.dir/bench_common.cpp.o.d"
  "/root/repo/bench/fig3b_rank_selection.cpp" "bench/CMakeFiles/bench_fig3b_rank_selection.dir/fig3b_rank_selection.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3b_rank_selection.dir/fig3b_rank_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vn2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vn2_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/vn2_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vn2_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/vn2_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/nmf/CMakeFiles/vn2_nmf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/vn2_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vn2_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
