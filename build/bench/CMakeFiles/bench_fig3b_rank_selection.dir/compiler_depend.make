# Empty compiler generated dependencies file for bench_fig3b_rank_selection.
# This may be replaced when dependencies are built.
