# Empty dependencies file for bench_fig3a_variations.
# This may be replaced when dependencies are built.
