file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_variations.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig3a_variations.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig3a_variations.dir/fig3a_variations.cpp.o"
  "CMakeFiles/bench_fig3a_variations.dir/fig3a_variations.cpp.o.d"
  "bench_fig3a_variations"
  "bench_fig3a_variations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_variations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
