# Empty compiler generated dependencies file for bench_fig5hi_train_test.
# This may be replaced when dependencies are built.
