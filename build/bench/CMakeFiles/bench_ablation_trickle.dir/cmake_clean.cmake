file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trickle.dir/ablation_trickle.cpp.o"
  "CMakeFiles/bench_ablation_trickle.dir/ablation_trickle.cpp.o.d"
  "CMakeFiles/bench_ablation_trickle.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_trickle.dir/bench_common.cpp.o.d"
  "bench_ablation_trickle"
  "bench_ablation_trickle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trickle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
