# Empty dependencies file for bench_ablation_trickle.
# This may be replaced when dependencies are built.
