# Empty dependencies file for bench_fig6a_prr.
# This may be replaced when dependencies are built.
