file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_prr.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig6a_prr.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig6a_prr.dir/fig6a_prr.cpp.o"
  "CMakeFiles/bench_fig6a_prr.dir/fig6a_prr.cpp.o.d"
  "bench_fig6a_prr"
  "bench_fig6a_prr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_prr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
