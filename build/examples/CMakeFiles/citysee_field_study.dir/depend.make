# Empty dependencies file for citysee_field_study.
# This may be replaced when dependencies are built.
