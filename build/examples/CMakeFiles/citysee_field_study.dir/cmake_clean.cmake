file(REMOVE_RECURSE
  "CMakeFiles/citysee_field_study.dir/citysee_field_study.cpp.o"
  "CMakeFiles/citysee_field_study.dir/citysee_field_study.cpp.o.d"
  "citysee_field_study"
  "citysee_field_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citysee_field_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
