file(REMOVE_RECURSE
  "CMakeFiles/testbed_diagnosis.dir/testbed_diagnosis.cpp.o"
  "CMakeFiles/testbed_diagnosis.dir/testbed_diagnosis.cpp.o.d"
  "testbed_diagnosis"
  "testbed_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
