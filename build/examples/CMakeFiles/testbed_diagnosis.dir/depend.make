# Empty dependencies file for testbed_diagnosis.
# This may be replaced when dependencies are built.
