file(REMOVE_RECURSE
  "CMakeFiles/test_silence.dir/silence_test.cpp.o"
  "CMakeFiles/test_silence.dir/silence_test.cpp.o.d"
  "test_silence"
  "test_silence.pdb"
  "test_silence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_silence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
