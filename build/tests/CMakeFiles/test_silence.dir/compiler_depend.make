# Empty compiler generated dependencies file for test_silence.
# This may be replaced when dependencies are built.
