file(REMOVE_RECURSE
  "CMakeFiles/test_exception_detection.dir/exception_detection_test.cpp.o"
  "CMakeFiles/test_exception_detection.dir/exception_detection_test.cpp.o.d"
  "test_exception_detection"
  "test_exception_detection.pdb"
  "test_exception_detection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exception_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
