file(REMOVE_RECURSE
  "CMakeFiles/test_lpl.dir/lpl_test.cpp.o"
  "CMakeFiles/test_lpl.dir/lpl_test.cpp.o.d"
  "test_lpl"
  "test_lpl.pdb"
  "test_lpl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
