# Empty dependencies file for test_lpl.
# This may be replaced when dependencies are built.
