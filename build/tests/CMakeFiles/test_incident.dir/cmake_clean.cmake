file(REMOVE_RECURSE
  "CMakeFiles/test_incident.dir/incident_test.cpp.o"
  "CMakeFiles/test_incident.dir/incident_test.cpp.o.d"
  "test_incident"
  "test_incident.pdb"
  "test_incident[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
