# Empty compiler generated dependencies file for test_nnls.
# This may be replaced when dependencies are built.
