file(REMOVE_RECURSE
  "CMakeFiles/test_nmf.dir/nmf_test.cpp.o"
  "CMakeFiles/test_nmf.dir/nmf_test.cpp.o.d"
  "test_nmf"
  "test_nmf.pdb"
  "test_nmf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
