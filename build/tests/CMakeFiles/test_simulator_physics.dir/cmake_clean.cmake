file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_physics.dir/simulator_physics_test.cpp.o"
  "CMakeFiles/test_simulator_physics.dir/simulator_physics_test.cpp.o.d"
  "test_simulator_physics"
  "test_simulator_physics.pdb"
  "test_simulator_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
