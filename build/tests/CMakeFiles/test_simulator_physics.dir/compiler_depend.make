# Empty compiler generated dependencies file for test_simulator_physics.
# This may be replaced when dependencies are built.
