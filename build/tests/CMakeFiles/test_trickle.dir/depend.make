# Empty dependencies file for test_trickle.
# This may be replaced when dependencies are built.
