file(REMOVE_RECURSE
  "CMakeFiles/test_trickle.dir/trickle_test.cpp.o"
  "CMakeFiles/test_trickle.dir/trickle_test.cpp.o.d"
  "test_trickle"
  "test_trickle.pdb"
  "test_trickle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trickle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
