# Empty compiler generated dependencies file for test_nmf_kl.
# This may be replaced when dependencies are built.
