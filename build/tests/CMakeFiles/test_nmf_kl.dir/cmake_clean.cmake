file(REMOVE_RECURSE
  "CMakeFiles/test_nmf_kl.dir/nmf_kl_test.cpp.o"
  "CMakeFiles/test_nmf_kl.dir/nmf_kl_test.cpp.o.d"
  "test_nmf_kl"
  "test_nmf_kl.pdb"
  "test_nmf_kl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmf_kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
