file(REMOVE_RECURSE
  "CMakeFiles/test_interpretation.dir/interpretation_test.cpp.o"
  "CMakeFiles/test_interpretation.dir/interpretation_test.cpp.o.d"
  "test_interpretation"
  "test_interpretation.pdb"
  "test_interpretation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
