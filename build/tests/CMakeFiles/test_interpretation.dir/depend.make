# Empty dependencies file for test_interpretation.
# This may be replaced when dependencies are built.
