file(REMOVE_RECURSE
  "CMakeFiles/vn2.dir/vn2_cli.cpp.o"
  "CMakeFiles/vn2.dir/vn2_cli.cpp.o.d"
  "vn2"
  "vn2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
