# Empty dependencies file for vn2.
# This may be replaced when dependencies are built.
