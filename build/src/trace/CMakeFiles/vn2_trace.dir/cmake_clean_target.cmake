file(REMOVE_RECURSE
  "libvn2_trace.a"
)
