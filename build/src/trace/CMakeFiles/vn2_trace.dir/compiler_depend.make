# Empty compiler generated dependencies file for vn2_trace.
# This may be replaced when dependencies are built.
