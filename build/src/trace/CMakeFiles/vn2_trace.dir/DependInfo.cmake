
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv.cpp" "src/trace/CMakeFiles/vn2_trace.dir/csv.cpp.o" "gcc" "src/trace/CMakeFiles/vn2_trace.dir/csv.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/vn2_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/vn2_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/vn2_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/vn2_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsn/CMakeFiles/vn2_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/vn2_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vn2_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
