file(REMOVE_RECURSE
  "CMakeFiles/vn2_trace.dir/csv.cpp.o"
  "CMakeFiles/vn2_trace.dir/csv.cpp.o.d"
  "CMakeFiles/vn2_trace.dir/stats.cpp.o"
  "CMakeFiles/vn2_trace.dir/stats.cpp.o.d"
  "CMakeFiles/vn2_trace.dir/trace.cpp.o"
  "CMakeFiles/vn2_trace.dir/trace.cpp.o.d"
  "libvn2_trace.a"
  "libvn2_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
