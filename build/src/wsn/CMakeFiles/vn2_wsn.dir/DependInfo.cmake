
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsn/environment.cpp" "src/wsn/CMakeFiles/vn2_wsn.dir/environment.cpp.o" "gcc" "src/wsn/CMakeFiles/vn2_wsn.dir/environment.cpp.o.d"
  "/root/repo/src/wsn/event_queue.cpp" "src/wsn/CMakeFiles/vn2_wsn.dir/event_queue.cpp.o" "gcc" "src/wsn/CMakeFiles/vn2_wsn.dir/event_queue.cpp.o.d"
  "/root/repo/src/wsn/faults.cpp" "src/wsn/CMakeFiles/vn2_wsn.dir/faults.cpp.o" "gcc" "src/wsn/CMakeFiles/vn2_wsn.dir/faults.cpp.o.d"
  "/root/repo/src/wsn/neighbor_table.cpp" "src/wsn/CMakeFiles/vn2_wsn.dir/neighbor_table.cpp.o" "gcc" "src/wsn/CMakeFiles/vn2_wsn.dir/neighbor_table.cpp.o.d"
  "/root/repo/src/wsn/node.cpp" "src/wsn/CMakeFiles/vn2_wsn.dir/node.cpp.o" "gcc" "src/wsn/CMakeFiles/vn2_wsn.dir/node.cpp.o.d"
  "/root/repo/src/wsn/radio.cpp" "src/wsn/CMakeFiles/vn2_wsn.dir/radio.cpp.o" "gcc" "src/wsn/CMakeFiles/vn2_wsn.dir/radio.cpp.o.d"
  "/root/repo/src/wsn/simulator.cpp" "src/wsn/CMakeFiles/vn2_wsn.dir/simulator.cpp.o" "gcc" "src/wsn/CMakeFiles/vn2_wsn.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/vn2_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
