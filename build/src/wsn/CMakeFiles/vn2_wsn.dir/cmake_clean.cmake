file(REMOVE_RECURSE
  "CMakeFiles/vn2_wsn.dir/environment.cpp.o"
  "CMakeFiles/vn2_wsn.dir/environment.cpp.o.d"
  "CMakeFiles/vn2_wsn.dir/event_queue.cpp.o"
  "CMakeFiles/vn2_wsn.dir/event_queue.cpp.o.d"
  "CMakeFiles/vn2_wsn.dir/faults.cpp.o"
  "CMakeFiles/vn2_wsn.dir/faults.cpp.o.d"
  "CMakeFiles/vn2_wsn.dir/neighbor_table.cpp.o"
  "CMakeFiles/vn2_wsn.dir/neighbor_table.cpp.o.d"
  "CMakeFiles/vn2_wsn.dir/node.cpp.o"
  "CMakeFiles/vn2_wsn.dir/node.cpp.o.d"
  "CMakeFiles/vn2_wsn.dir/radio.cpp.o"
  "CMakeFiles/vn2_wsn.dir/radio.cpp.o.d"
  "CMakeFiles/vn2_wsn.dir/simulator.cpp.o"
  "CMakeFiles/vn2_wsn.dir/simulator.cpp.o.d"
  "libvn2_wsn.a"
  "libvn2_wsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2_wsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
