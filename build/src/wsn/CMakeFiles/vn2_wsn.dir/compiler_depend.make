# Empty compiler generated dependencies file for vn2_wsn.
# This may be replaced when dependencies are built.
