file(REMOVE_RECURSE
  "libvn2_wsn.a"
)
