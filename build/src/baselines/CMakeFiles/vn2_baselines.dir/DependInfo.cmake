
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/agnostic.cpp" "src/baselines/CMakeFiles/vn2_baselines.dir/agnostic.cpp.o" "gcc" "src/baselines/CMakeFiles/vn2_baselines.dir/agnostic.cpp.o.d"
  "/root/repo/src/baselines/kmeans.cpp" "src/baselines/CMakeFiles/vn2_baselines.dir/kmeans.cpp.o" "gcc" "src/baselines/CMakeFiles/vn2_baselines.dir/kmeans.cpp.o.d"
  "/root/repo/src/baselines/pca_decomposer.cpp" "src/baselines/CMakeFiles/vn2_baselines.dir/pca_decomposer.cpp.o" "gcc" "src/baselines/CMakeFiles/vn2_baselines.dir/pca_decomposer.cpp.o.d"
  "/root/repo/src/baselines/sympathy.cpp" "src/baselines/CMakeFiles/vn2_baselines.dir/sympathy.cpp.o" "gcc" "src/baselines/CMakeFiles/vn2_baselines.dir/sympathy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/vn2_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vn2_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
