file(REMOVE_RECURSE
  "libvn2_baselines.a"
)
