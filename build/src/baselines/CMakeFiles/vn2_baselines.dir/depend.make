# Empty dependencies file for vn2_baselines.
# This may be replaced when dependencies are built.
