file(REMOVE_RECURSE
  "CMakeFiles/vn2_baselines.dir/agnostic.cpp.o"
  "CMakeFiles/vn2_baselines.dir/agnostic.cpp.o.d"
  "CMakeFiles/vn2_baselines.dir/kmeans.cpp.o"
  "CMakeFiles/vn2_baselines.dir/kmeans.cpp.o.d"
  "CMakeFiles/vn2_baselines.dir/pca_decomposer.cpp.o"
  "CMakeFiles/vn2_baselines.dir/pca_decomposer.cpp.o.d"
  "CMakeFiles/vn2_baselines.dir/sympathy.cpp.o"
  "CMakeFiles/vn2_baselines.dir/sympathy.cpp.o.d"
  "libvn2_baselines.a"
  "libvn2_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
