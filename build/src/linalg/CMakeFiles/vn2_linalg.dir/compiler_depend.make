# Empty compiler generated dependencies file for vn2_linalg.
# This may be replaced when dependencies are built.
