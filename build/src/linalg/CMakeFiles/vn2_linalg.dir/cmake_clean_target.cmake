file(REMOVE_RECURSE
  "libvn2_linalg.a"
)
