file(REMOVE_RECURSE
  "CMakeFiles/vn2_linalg.dir/matrix.cpp.o"
  "CMakeFiles/vn2_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/vn2_linalg.dir/nnls.cpp.o"
  "CMakeFiles/vn2_linalg.dir/nnls.cpp.o.d"
  "CMakeFiles/vn2_linalg.dir/pca.cpp.o"
  "CMakeFiles/vn2_linalg.dir/pca.cpp.o.d"
  "CMakeFiles/vn2_linalg.dir/random.cpp.o"
  "CMakeFiles/vn2_linalg.dir/random.cpp.o.d"
  "CMakeFiles/vn2_linalg.dir/solve.cpp.o"
  "CMakeFiles/vn2_linalg.dir/solve.cpp.o.d"
  "libvn2_linalg.a"
  "libvn2_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
