# Empty dependencies file for vn2_nmf.
# This may be replaced when dependencies are built.
