file(REMOVE_RECURSE
  "libvn2_nmf.a"
)
