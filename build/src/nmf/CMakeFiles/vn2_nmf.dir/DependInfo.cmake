
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nmf/nmf.cpp" "src/nmf/CMakeFiles/vn2_nmf.dir/nmf.cpp.o" "gcc" "src/nmf/CMakeFiles/vn2_nmf.dir/nmf.cpp.o.d"
  "/root/repo/src/nmf/nmf_kl.cpp" "src/nmf/CMakeFiles/vn2_nmf.dir/nmf_kl.cpp.o" "gcc" "src/nmf/CMakeFiles/vn2_nmf.dir/nmf_kl.cpp.o.d"
  "/root/repo/src/nmf/rank_selection.cpp" "src/nmf/CMakeFiles/vn2_nmf.dir/rank_selection.cpp.o" "gcc" "src/nmf/CMakeFiles/vn2_nmf.dir/rank_selection.cpp.o.d"
  "/root/repo/src/nmf/sparsify.cpp" "src/nmf/CMakeFiles/vn2_nmf.dir/sparsify.cpp.o" "gcc" "src/nmf/CMakeFiles/vn2_nmf.dir/sparsify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/vn2_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
