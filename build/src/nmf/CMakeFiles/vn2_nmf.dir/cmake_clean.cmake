file(REMOVE_RECURSE
  "CMakeFiles/vn2_nmf.dir/nmf.cpp.o"
  "CMakeFiles/vn2_nmf.dir/nmf.cpp.o.d"
  "CMakeFiles/vn2_nmf.dir/nmf_kl.cpp.o"
  "CMakeFiles/vn2_nmf.dir/nmf_kl.cpp.o.d"
  "CMakeFiles/vn2_nmf.dir/rank_selection.cpp.o"
  "CMakeFiles/vn2_nmf.dir/rank_selection.cpp.o.d"
  "CMakeFiles/vn2_nmf.dir/sparsify.cpp.o"
  "CMakeFiles/vn2_nmf.dir/sparsify.cpp.o.d"
  "libvn2_nmf.a"
  "libvn2_nmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2_nmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
