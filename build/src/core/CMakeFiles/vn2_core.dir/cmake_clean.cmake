file(REMOVE_RECURSE
  "CMakeFiles/vn2_core.dir/encoder.cpp.o"
  "CMakeFiles/vn2_core.dir/encoder.cpp.o.d"
  "CMakeFiles/vn2_core.dir/evaluation.cpp.o"
  "CMakeFiles/vn2_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/vn2_core.dir/exception_detection.cpp.o"
  "CMakeFiles/vn2_core.dir/exception_detection.cpp.o.d"
  "CMakeFiles/vn2_core.dir/incident.cpp.o"
  "CMakeFiles/vn2_core.dir/incident.cpp.o.d"
  "CMakeFiles/vn2_core.dir/inference.cpp.o"
  "CMakeFiles/vn2_core.dir/inference.cpp.o.d"
  "CMakeFiles/vn2_core.dir/interpretation.cpp.o"
  "CMakeFiles/vn2_core.dir/interpretation.cpp.o.d"
  "CMakeFiles/vn2_core.dir/model.cpp.o"
  "CMakeFiles/vn2_core.dir/model.cpp.o.d"
  "CMakeFiles/vn2_core.dir/online.cpp.o"
  "CMakeFiles/vn2_core.dir/online.cpp.o.d"
  "CMakeFiles/vn2_core.dir/performance.cpp.o"
  "CMakeFiles/vn2_core.dir/performance.cpp.o.d"
  "CMakeFiles/vn2_core.dir/scaler.cpp.o"
  "CMakeFiles/vn2_core.dir/scaler.cpp.o.d"
  "CMakeFiles/vn2_core.dir/silence.cpp.o"
  "CMakeFiles/vn2_core.dir/silence.cpp.o.d"
  "CMakeFiles/vn2_core.dir/vn2.cpp.o"
  "CMakeFiles/vn2_core.dir/vn2.cpp.o.d"
  "libvn2_core.a"
  "libvn2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
