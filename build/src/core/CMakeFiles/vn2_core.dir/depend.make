# Empty dependencies file for vn2_core.
# This may be replaced when dependencies are built.
