file(REMOVE_RECURSE
  "libvn2_core.a"
)
