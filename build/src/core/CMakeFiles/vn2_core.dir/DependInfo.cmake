
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/encoder.cpp" "src/core/CMakeFiles/vn2_core.dir/encoder.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/encoder.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/vn2_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/exception_detection.cpp" "src/core/CMakeFiles/vn2_core.dir/exception_detection.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/exception_detection.cpp.o.d"
  "/root/repo/src/core/incident.cpp" "src/core/CMakeFiles/vn2_core.dir/incident.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/incident.cpp.o.d"
  "/root/repo/src/core/inference.cpp" "src/core/CMakeFiles/vn2_core.dir/inference.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/inference.cpp.o.d"
  "/root/repo/src/core/interpretation.cpp" "src/core/CMakeFiles/vn2_core.dir/interpretation.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/interpretation.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/vn2_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/model.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/vn2_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/online.cpp.o.d"
  "/root/repo/src/core/performance.cpp" "src/core/CMakeFiles/vn2_core.dir/performance.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/performance.cpp.o.d"
  "/root/repo/src/core/scaler.cpp" "src/core/CMakeFiles/vn2_core.dir/scaler.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/scaler.cpp.o.d"
  "/root/repo/src/core/silence.cpp" "src/core/CMakeFiles/vn2_core.dir/silence.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/silence.cpp.o.d"
  "/root/repo/src/core/vn2.cpp" "src/core/CMakeFiles/vn2_core.dir/vn2.cpp.o" "gcc" "src/core/CMakeFiles/vn2_core.dir/vn2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nmf/CMakeFiles/vn2_nmf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/vn2_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vn2_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vn2_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/vn2_wsn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
