file(REMOVE_RECURSE
  "CMakeFiles/vn2_scenario.dir/scenario.cpp.o"
  "CMakeFiles/vn2_scenario.dir/scenario.cpp.o.d"
  "libvn2_scenario.a"
  "libvn2_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
