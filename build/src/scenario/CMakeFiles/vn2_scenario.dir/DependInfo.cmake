
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenario/scenario.cpp" "src/scenario/CMakeFiles/vn2_scenario.dir/scenario.cpp.o" "gcc" "src/scenario/CMakeFiles/vn2_scenario.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsn/CMakeFiles/vn2_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vn2_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
