# Empty dependencies file for vn2_scenario.
# This may be replaced when dependencies are built.
