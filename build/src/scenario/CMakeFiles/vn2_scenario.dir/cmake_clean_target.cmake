file(REMOVE_RECURSE
  "libvn2_scenario.a"
)
