file(REMOVE_RECURSE
  "libvn2_metrics.a"
)
