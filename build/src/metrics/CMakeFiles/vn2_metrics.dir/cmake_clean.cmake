file(REMOVE_RECURSE
  "CMakeFiles/vn2_metrics.dir/hazards.cpp.o"
  "CMakeFiles/vn2_metrics.dir/hazards.cpp.o.d"
  "CMakeFiles/vn2_metrics.dir/schema.cpp.o"
  "CMakeFiles/vn2_metrics.dir/schema.cpp.o.d"
  "libvn2_metrics.a"
  "libvn2_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vn2_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
