# Empty compiler generated dependencies file for vn2_metrics.
# This may be replaced when dependencies are built.
