// vn2-lint — VN2's project-specific static checker.
//
// A dependency-free (std-only) line-level linter that enforces the
// invariants the compiler cannot: determinism of the analysis pipeline,
// double-only numeric kernels, IO discipline, parallel_for capture
// hygiene, and header hygiene. See DESIGN.md "Correctness & static
// analysis" for the rule catalogue and rationale.
//
// Findings are suppressible per line with
//
//   some_call();  // vn2-lint: allow(<rule>[, <rule>...])
//
// or with the same comment alone on the line above. The binary exits
// non-zero when any unsuppressed finding remains, so both ctest and CI
// gate on it.
#pragma once

#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace vn2::lint {

/// One rule violation, anchored to a file and 1-based line.
struct Finding {
  std::string file;     ///< Path as reported (repo-relative when walking).
  std::size_t line = 0; ///< 1-based line number.
  std::string rule;     ///< Rule identifier, e.g. "nondeterminism-random".
  std::string message;  ///< Human-readable explanation.
};

/// Cross-file context some rules need. Rules whose context is absent
/// (nullopt) are disabled, so single-file linting stays meaningful.
struct LintOptions {
  /// Repo-relative paths sanctioned to call parallel_for, parsed from the
  /// threading inventory in DESIGN.md. nullopt disables the
  /// parallel-inventory rule.
  std::optional<std::set<std::string>> threading_inventory;
};

/// Identifiers of every rule, in reporting order.
[[nodiscard]] std::vector<std::string> rule_ids();

/// Parses the "### Threading inventory" section of DESIGN.md: every
/// backtick-quoted path until the next heading. nullopt when the file or
/// the section is missing.
[[nodiscard]] std::optional<std::set<std::string>> parse_threading_inventory(
    const std::filesystem::path& design_md);

/// Lints one file's contents. `path` (repo-relative, forward slashes) is
/// used both for reporting and for rule scoping — e.g. the float ban only
/// applies under src/linalg and src/nmf.
[[nodiscard]] std::vector<Finding> lint_content(const std::string& path,
                                                const std::string& content,
                                                const LintOptions& options);
[[nodiscard]] std::vector<Finding> lint_content(const std::string& path,
                                                const std::string& content);

/// Reads and lints one file on disk, reporting it as `relative`.
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& file,
                                             const std::string& relative,
                                             const LintOptions& options = {});

/// Walks `dirs` (default: src, tools, bench, examples) under `root` and
/// lints every C++ source/header found. Reads `root`/DESIGN.md to arm the
/// parallel-inventory rule.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::filesystem::path& root,
    const std::vector<std::string>& dirs = {});

}  // namespace vn2::lint
