// vn2-lint — VN2's project-specific static checker (v2 engine).
//
// A dependency-free (std-only) analysis tool that enforces the
// invariants the compiler cannot: determinism of the analysis pipeline,
// double-only numeric kernels, IO discipline, parallel_for capture and
// synchronization hygiene, contract-checked public entry points, and
// header hygiene. The v2 engine lexes each file into a real token
// stream with a brace/scope tracker (tools/lint/), so rules can reason
// about function boundaries, lambda bodies, and loop nests — not just
// lines. See DESIGN.md "Correctness & static analysis" for the rule
// catalogue and rationale.
//
// Findings are suppressible per line with
//
//   some_call();  // vn2-lint: allow(<rule>[, <rule>...])
//
// or with the same comment alone on the line above. Grandfathered
// findings can instead live in a checked-in SARIF baseline
// (`lint_baseline.sarif`, see tools/lint/sarif.hpp) that may only ever
// shrink. Exit codes: 0 clean, 1 unsuppressed or stale-baseline
// findings, 2 usage or IO error.
#pragma once

#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace vn2::lint {

/// One rule violation, anchored to a file and 1-based line.
struct Finding {
  std::string file;     ///< Path as reported (repo-relative when walking).
  std::size_t line = 0; ///< 1-based line number.
  std::string rule;     ///< Rule identifier, e.g. "nondeterminism-random".
  std::string message;  ///< Human-readable explanation.

  friend bool operator==(const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule &&
           a.message == b.message;
  }
};

/// Cross-file context some rules need. Rules whose context is absent
/// (nullopt) are disabled, so single-file linting stays meaningful.
struct LintOptions {
  /// Repo-relative paths sanctioned to call parallel_for, parsed from the
  /// threading inventory in DESIGN.md. nullopt disables the
  /// parallel-inventory rule.
  std::optional<std::set<std::string>> threading_inventory;

  /// Names of non-inline functions declared in public headers
  /// (src/*/*.hpp), collected by `collect_public_api`. nullopt disables
  /// the unchecked-public-entry rule.
  std::optional<std::set<std::string>> public_api;
};

/// Identifiers of every rule, in reporting order.
[[nodiscard]] std::vector<std::string> rule_ids();

/// Every rule id paired with its one-line description (the SARIF
/// reportingDescriptor text), in the same order as `rule_ids`.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
rule_catalogue();

/// Parses the "### Threading inventory" section of DESIGN.md: every
/// backtick-quoted path until the next heading. nullopt when the file or
/// the section is missing.
[[nodiscard]] std::optional<std::set<std::string>> parse_threading_inventory(
    const std::filesystem::path& design_md);

/// Walks `root`/src/**/*.hpp|h and collects the names of every
/// non-inline function the headers declare — the public-entry set the
/// unchecked-public-entry rule checks definitions against.
[[nodiscard]] std::set<std::string> collect_public_api(
    const std::filesystem::path& root);

/// Lints one file's contents. `path` (repo-relative, forward slashes) is
/// used both for reporting and for rule scoping — e.g. the float ban only
/// applies under src/linalg and src/nmf.
[[nodiscard]] std::vector<Finding> lint_content(const std::string& path,
                                                const std::string& content,
                                                const LintOptions& options);
[[nodiscard]] std::vector<Finding> lint_content(const std::string& path,
                                                const std::string& content);

/// Reads and lints one file on disk, reporting it as `relative`.
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& file,
                                             const std::string& relative,
                                             const LintOptions& options = {});

/// Walks `dirs` (default: src, tools, bench, examples) under `root` and
/// lints every C++ source/header found. Reads `root`/DESIGN.md to arm the
/// parallel-inventory rule and `root`/src headers to arm
/// unchecked-public-entry.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::filesystem::path& root,
    const std::vector<std::string>& dirs = {});

/// The CLI entry point (argv semantics of the vn2_lint binary), exposed
/// so tests can assert exit-code behaviour: 0 clean, 1 findings (or a
/// stale baseline entry), 2 usage/IO error.
[[nodiscard]] int lint_main(int argc, const char* const* argv);

}  // namespace vn2::lint
