// vn2 — command-line front end to the VN2 pipeline.
//
//   vn2 simulate --scenario tiny|testbed|citysee [--days D] [--seed S]
//                [--spacing M] [--runs N] --out trace.csv
//   vn2 train    --trace trace.csv [--rank R] [--threshold T]
//                [--skip-extraction] --out model.vn2
//   vn2 inspect  --model model.vn2
//   vn2 diagnose --model model.vn2 --trace trace.csv [--top K] [--all]
//   vn2 incidents --model model.vn2 --trace trace.csv [--gap S]
//
// Traces are the CSV format of trace/csv.hpp (one row per assembled
// snapshot), so field data exported from a real deployment can be run
// through `train`/`diagnose` unchanged.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/incident.hpp"
#include "core/parallel.hpp"
#include "core/silence.hpp"
#include "core/vn2.hpp"
#include "linalg/cpu_features.hpp"
#include "linalg/kernels.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/calltree.hpp"
#include "telemetry/profdiff.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/csv.hpp"
#include "trace/stats.hpp"
#include "trace/trace.hpp"

namespace {

using namespace vn2;

struct Args {
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;
  std::vector<std::string> positional;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    auto it = flags.find(key);
    return it != flags.end() && it->second;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      // Bare tokens are positionals (currently only `profile --diff`
      // consumes them); each command rejects the ones it has no use for.
      args.positional.push_back(std::move(token));
      continue;
    }
    token = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[token] = argv[++i];
    } else {
      args.flags[token] = true;
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  vn2 simulate  --scenario tiny|testbed|citysee [--days D] [--seed S]\n"
      "                [--nodes N] [--spacing M] [--runs R] --out trace.csv\n"
      "  vn2 train     --trace trace.csv [--rank R] [--threshold T]\n"
      "                [--skip-extraction] --out model.vn2\n"
      "  vn2 inspect   --model model.vn2\n"
      "  vn2 diagnose  --model model.vn2 --trace trace.csv [--top K] [--all]\n"
      "                [--batch-size N]  (stream states through bounded\n"
      "                 batches of N instead of materializing everything)\n"
      "  vn2 incidents --model model.vn2 --trace trace.csv [--gap seconds]\n"
      "  vn2 silent    --trace trace.csv [--factor F]\n"
      "  vn2 stats     --trace trace.csv\n"
      "  vn2 profile   --scenario tiny|testbed|citysee [--days D] [--seed S]\n"
      "                [--nodes N] [--rank R] [--top K] [--out snap.json]\n"
      "                [--trace-out trace.json] [--json]  (--json prints the\n"
      "                 snapshot — spans, call tree, counters, resources —\n"
      "                 to stdout)\n"
      "                [--sample-ms N]  (resource time-series sampling\n"
      "                 interval; default 25, 0 disables the sampler)\n"
      "  vn2 profile   --diff base.json run.json [--floor F] [--min-ns N]\n"
      "                [--markdown]  (diff two profile snapshots by call-tree\n"
      "                 path; exit 1 when a path regressed past the floors)\n"
      "\n"
      "global options:\n"
      "  --threads N   thread budget for analysis/simulation hot paths\n"
      "                (default: hardware concurrency; 1 = fully serial)\n"
      "  --linalg-backend auto|reference|blocked|simd\n"
      "                dense-kernel implementation (auto picks the fastest\n"
      "                the build and host CPU support: simd, else blocked,\n"
      "                else reference; forcing simd on unsupported hardware\n"
      "                is an error)\n"
      "  --telemetry FILE        write a telemetry snapshot (JSON) on exit\n"
      "  --telemetry-trace FILE  write spans as chrome://tracing JSON on "
      "exit\n");
  return 2;
}

/// Output path of run `run` in a batch: "trace.csv" -> "trace.run3.csv".
std::string run_output_path(const std::string& out, std::size_t run) {
  const std::size_t dot = out.find_last_of('.');
  const std::size_t slash = out.find_last_of('/');
  const std::string tag = ".run" + std::to_string(run);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return out + tag;
  return out.substr(0, dot) + tag + out.substr(dot);
}

bool known_scenario(const std::string& kind) {
  return kind == "citysee" || kind == "testbed" || kind == "tiny";
}

/// Shared unknown-scenario diagnostic: always names the valid choices,
/// mirroring the --linalg-backend error style.
int unknown_scenario(const char* command, const std::string& kind) {
  std::fprintf(stderr,
               "%s: unknown scenario '%s' (expected tiny, testbed, or "
               "citysee)\n",
               command, kind.c_str());
  return 2;
}

/// Builds one scenario replication from CLI options (shared by simulate
/// and profile). `run_seed` already includes any per-run offset.
scenario::ScenarioBundle make_scenario_bundle(const std::string& kind,
                                              const Args& args,
                                              std::uint64_t run_seed) {
  scenario::ScenarioBundle bundle;
  if (kind == "citysee") {
    scenario::CityseeParams params;
    params.days = args.number("days", 1.0);
    params.node_count = static_cast<std::size_t>(args.number("nodes", 286));
    params.seed = run_seed;
    bundle = scenario::citysee_field(params);
  } else if (kind == "testbed") {
    scenario::TestbedParams params;
    params.seed = run_seed;
    bundle = scenario::testbed(params);
  } else {
    bundle =
        scenario::tiny(static_cast<std::size_t>(args.number("nodes", 16)),
                       args.number("days", 0.125) * 86400.0, run_seed,
                       args.number("spacing", 8.0));
  }
  return bundle;
}

int cmd_simulate(const Args& args) {
  const std::string kind = args.get("scenario", "tiny");
  const std::string out = args.get("out");
  if (out.empty()) {
    std::fprintf(stderr, "simulate: --out is required\n");
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 7));
  const auto runs = static_cast<std::size_t>(args.number("runs", 1));
  if (runs == 0) {
    std::fprintf(stderr, "simulate: --runs must be >= 1\n");
    return 2;
  }

  // Each run gets its own seed, so a batch is N independent replications
  // of the scenario; run k's trace is identical whether it ran alone
  // (--seed seed+k) or inside a concurrent batch.
  auto make_bundle = [&](std::uint64_t run_seed) {
    return make_scenario_bundle(kind, args, run_seed);
  };
  if (!known_scenario(kind)) return unknown_scenario("simulate", kind);

  if (runs == 1) {
    scenario::ScenarioBundle bundle = make_bundle(seed);
    std::printf("simulating '%s': %zu nodes, %.2f h...\n", kind.c_str(),
                bundle.config.positions.size(),
                bundle.config.duration / 3600.0);
    wsn::Simulator sim = bundle.make_simulator();
    const wsn::SimulationResult result = sim.run();
    const trace::Trace log = trace::build_trace(result);
    trace::write_trace_csv_file(out, log);
    std::printf("PRR %.3f, %zu snapshots from %zu nodes -> %s\n",
                trace::overall_prr(result), log.total_snapshots(),
                log.nodes.size(), out.c_str());
    return 0;
  }

  struct RunSummary {
    std::string path;
    double prr = 0.0;
    std::size_t snapshots = 0;
    std::size_t nodes = 0;
  };
  std::vector<RunSummary> summaries(runs);
  std::printf("simulating '%s': %zu runs (seeds %llu..%llu) on %zu "
              "threads...\n",
              kind.c_str(), runs, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed + runs - 1),
              core::num_threads());
  core::parallel_for(0, runs, 1, [&](std::size_t run) {
    scenario::ScenarioBundle bundle = make_bundle(seed + run);
    wsn::Simulator sim = bundle.make_simulator();
    const wsn::SimulationResult result = sim.run();
    const trace::Trace log = trace::build_trace(result);
    RunSummary& summary = summaries[run];
    summary.path = run_output_path(out, run);
    trace::write_trace_csv_file(summary.path, log);
    summary.prr = trace::overall_prr(result);
    summary.snapshots = log.total_snapshots();
    summary.nodes = log.nodes.size();
  });
  double prr_total = 0.0;
  std::size_t snapshot_total = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    const RunSummary& summary = summaries[run];
    std::printf("run %zu: PRR %.3f, %zu snapshots from %zu nodes -> %s\n",
                run, summary.prr, summary.snapshots, summary.nodes,
                summary.path.c_str());
    prr_total += summary.prr;
    snapshot_total += summary.snapshots;
  }
  std::printf("%zu runs: mean PRR %.3f, %zu snapshots total\n", runs,
              prr_total / static_cast<double>(runs), snapshot_total);
  return 0;
}

std::vector<trace::StateVector> load_states(const std::string& path) {
  const trace::Trace log = trace::read_trace_csv_file(path);
  return trace::extract_states(log);
}

int cmd_train(const Args& args) {
  const std::string trace_path = args.get("trace");
  const std::string out = args.get("out");
  if (trace_path.empty() || out.empty()) {
    std::fprintf(stderr, "train: --trace and --out are required\n");
    return 2;
  }
  const auto states = load_states(trace_path);
  std::printf("loaded %zu states from %s\n", states.size(),
              trace_path.c_str());

  core::TrainingOptions options;
  options.rank = static_cast<std::size_t>(args.number("rank", 0));
  options.exception_threshold = args.number("threshold", 0.30);
  options.skip_exception_extraction = args.flag("skip-extraction");
  const core::TrainingReport report =
      core::train(trace::states_matrix(states), options);

  if (!report.rank_sweep.empty()) {
    std::printf("rank sweep:\n");
    for (const nmf::RankPoint& p : report.rank_sweep)
      std::printf("  r=%2zu  alpha=%.4f  alpha_sparse=%.4f\n", p.rank,
                  p.accuracy_original, p.accuracy_sparse);
  }
  std::printf("trained: %zu exception states of %zu, r=%zu, alpha=%.4f\n",
              report.exception_states, report.training_states,
              report.chosen_rank,
              report.nmf.objective_history.empty()
                  ? 0.0
                  : report.nmf.objective_history.back());
  report.model.save(out);
  std::printf("model -> %s\n", out.c_str());
  return 0;
}

int cmd_inspect(const Args& args) {
  const std::string model_path = args.get("model");
  if (model_path.empty()) {
    std::fprintf(stderr, "inspect: --model is required\n");
    return 2;
  }
  core::Vn2Tool tool =
      core::Vn2Tool::from_model(core::Vn2Model::load(model_path));
  std::printf("representative matrix: %zu root-cause vectors\n",
              tool.model().rank());
  for (const core::RootCauseInterpretation& interp : tool.interpretations())
    std::printf("  psi[%2zu]: %s\n", interp.row, interp.summary.c_str());
  return 0;
}

int cmd_diagnose(const Args& args) {
  const std::string model_path = args.get("model");
  const std::string trace_path = args.get("trace");
  if (model_path.empty() || trace_path.empty()) {
    std::fprintf(stderr, "diagnose: --model and --trace are required\n");
    return 2;
  }
  core::Vn2Tool tool =
      core::Vn2Tool::from_model(core::Vn2Model::load(model_path));
  const auto states = load_states(trace_path);
  const auto top = static_cast<std::size_t>(args.number("top", 10));
  const bool all = args.flag("all");

  // --batch-size N: the streaming path. States flow through
  // core::diagnose_stream's bounded queue in batches of N; the sink keeps
  // only the exceptions' (ε, index) pairs, and the shown ones are
  // re-explained afterwards. Same ε ranking and output as the batch path,
  // with memory bounded by the batch instead of the whole trace.
  if (const auto batch_size =
          static_cast<std::size_t>(args.number("batch-size", 0));
      batch_size > 0) {
    core::StreamOptions stream_options;
    stream_options.batch_size = batch_size;
    std::vector<std::pair<double, std::size_t>> found;
    const core::StreamReport report = core::diagnose_stream(
        tool.model(), trace::states_matrix(states), stream_options,
        [&](std::size_t first, const std::vector<core::Diagnosis>& batch) {
          for (std::size_t i = 0; i < batch.size(); ++i)
            if (batch[i].is_exception)
              found.emplace_back(batch[i].exception_score, first + i);
        });
    std::sort(found.rbegin(), found.rend());
    std::size_t shown = 0;
    for (const auto& [score, index] : found) {
      if (!all && shown >= top) break;
      const auto explanation = tool.explain(states[index].delta);
      std::printf("node %u @ t=%.0fs: %s\n", states[index].node,
                  states[index].time, explanation.text.c_str());
      ++shown;
    }
    std::printf("\n%zu of %zu states are exceptions (%zu shown, "
                "%zu batches of %zu)\n",
                report.exceptions, report.states, shown, report.batches,
                batch_size);
    return 0;
  }

  // Rank by ε score; print the top K (or every exception with --all).
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t i = 0; i < states.size(); ++i)
    ranked.emplace_back(tool.model().exception_score(states[i].delta), i);
  std::sort(ranked.rbegin(), ranked.rend());

  std::size_t shown = 0, exceptions = 0;
  for (const auto& [score, index] : ranked) {
    const auto explanation = tool.explain(states[index].delta);
    if (!explanation.diagnosis.is_exception) break;  // Sorted: rest are normal.
    ++exceptions;
    if (all || shown < top) {
      std::printf("node %u @ t=%.0fs: %s\n", states[index].node,
                  states[index].time, explanation.text.c_str());
      ++shown;
    }
  }
  std::printf("\n%zu of %zu states are exceptions (%zu shown)\n", exceptions,
              states.size(), shown);
  return 0;
}

int cmd_incidents(const Args& args) {
  const std::string model_path = args.get("model");
  const std::string trace_path = args.get("trace");
  if (model_path.empty() || trace_path.empty()) {
    std::fprintf(stderr, "incidents: --model and --trace are required\n");
    return 2;
  }
  core::Vn2Tool tool =
      core::Vn2Tool::from_model(core::Vn2Model::load(model_path));
  const auto states = load_states(trace_path);

  // The per-state NNLS solves are independent — run them on the pool.
  const std::vector<core::Diagnosis> diagnoses =
      tool.diagnose_states(trace::states_matrix(states));

  core::IncidentOptions options;
  options.merge_gap = args.number("gap", 1800.0);
  const auto incidents = core::aggregate_incidents(
      states, diagnoses, tool.interpretations(), options);
  for (const core::Incident& incident : incidents)
    std::printf("%s\n", incident.summary.c_str());
  std::printf("\n%zu incidents from %zu states\n", incidents.size(),
              states.size());
  return 0;
}

int cmd_silent(const Args& args) {
  const std::string trace_path = args.get("trace");
  if (trace_path.empty()) {
    std::fprintf(stderr, "silent: --trace is required\n");
    return 2;
  }
  const trace::Trace log = trace::read_trace_csv_file(trace_path);
  core::SilenceOptions options;
  options.factor = args.number("factor", 4.0);
  // "now" = the latest snapshot anywhere in the trace.
  wsn::Time now = 0.0;
  for (const trace::NodeSeries& series : log.nodes)
    if (!series.snapshots.empty())
      now = std::max(now, series.snapshots.back().time);
  const auto silent = core::detect_silent_nodes(log, now, options);
  for (const core::SilentNode& entry : silent)
    std::printf("node %u silent for %.0fs (last seen t=%.0fs, expected "
                "every %.0fs)\n",
                entry.node, entry.silent_for, entry.last_seen,
                entry.expected_interval);
  std::printf("\n%zu of %zu nodes look silent as of t=%.0fs\n", silent.size(),
              log.nodes.size(), now);
  return 0;
}

int cmd_stats(const Args& args) {
  const std::string trace_path = args.get("trace");
  if (trace_path.empty()) {
    std::fprintf(stderr, "stats: --trace is required\n");
    return 2;
  }
  const trace::Trace log = trace::read_trace_csv_file(trace_path);
  const trace::NetworkStats stats = trace::compute_stats(log);
  std::ostringstream os;
  trace::print_stats(os, stats, /*has_prr=*/false);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}

// ---------------------------------------------------------------------------
// Telemetry output: the library serializes through a Sink; the file
// handles live here in the CLI, per the io-in-library rule.

void write_telemetry_file(
    const std::string& path, bool chrome_trace,
    const std::vector<telemetry::ResourceSample>* series = nullptr) {
  telemetry::Snapshot snapshot = telemetry::Registry::global().snapshot();
  if (series != nullptr) snapshot.resource_series = *series;
  telemetry::StringSink sink;
  if (chrome_trace)
    telemetry::write_trace_events(sink, snapshot);
  else
    telemetry::write_json(sink, snapshot);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr)
    throw std::runtime_error("cannot open for write: " + path);
  std::fwrite(sink.str().data(), 1, sink.str().size(), file);
  std::fclose(file);
  std::printf("telemetry %s -> %s\n", chrome_trace ? "trace" : "snapshot",
              path.c_str());
}

std::string read_text_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    throw std::runtime_error("cannot open for read: " + path);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
    text.append(buffer, got);
  std::fclose(file);
  return text;
}

/// `vn2 profile --diff base.json run.json`: align two snapshots'
/// call trees by path and report regressions with benchstat-style exit
/// codes (0 clean, 1 regression, 2 usage/input error).
int profile_diff(const Args& args) {
  const std::string base_path = args.get("diff");
  if (base_path.empty() || args.positional.size() != 1) {
    std::fprintf(stderr,
                 "profile: --diff takes two snapshots: "
                 "vn2 profile --diff base.json run.json\n");
    return 2;
  }
  telemetry::ProfDiffOptions options;
  options.relative_floor = args.number("floor", options.relative_floor);
  options.min_delta_ns = static_cast<std::uint64_t>(args.number(
      "min-ns", static_cast<double>(options.min_delta_ns)));
  if (options.relative_floor < 0.0) {
    std::fprintf(stderr, "profile: --floor must be non-negative\n");
    return 2;
  }
  telemetry::ProfDiffReport report;
  try {
    const auto base =
        telemetry::read_call_tree_json(read_text_file(base_path));
    const auto run =
        telemetry::read_call_tree_json(read_text_file(args.positional[0]));
    report = telemetry::diff_call_trees(base, run, options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "profile: --diff: %s\n", error.what());
    return 2;
  }
  const std::string rendered = args.flag("markdown")
                                   ? telemetry::render_markdown(report)
                                   : telemetry::render_text(report);
  std::fputs(rendered.c_str(), stdout);
  return report.failed() ? 1 : 0;
}

int cmd_profile(const Args& args) {
  if (!args.get("diff").empty() || args.flag("diff"))
    return profile_diff(args);
  if (!args.positional.empty()) {
    std::fprintf(stderr, "profile: unexpected argument '%s'\n",
                 args.positional.front().c_str());
    return 2;
  }
  const std::string kind = args.get("scenario", "tiny");
  if (!known_scenario(kind)) return unknown_scenario("profile", kind);
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 7));
  const auto top = static_cast<std::size_t>(args.number("top", 12));
  // --json: machine-readable mode — the only stdout output is the
  // telemetry snapshot JSON (spans, counters, resource usage).
  const bool json = args.flag("json");

  if (!telemetry::kCompiledIn && !json)
    std::printf("note: built with VN2_TELEMETRY=OFF; macro instrumentation "
                "is compiled out\n");
  telemetry::Registry::global().reset();

  // --sample-ms N: background resource time series over the pipeline
  // (0 disables; the sampler is also a no-op when telemetry is compiled
  // out). The series rides along in every snapshot written below.
  const auto sample_ms =
      static_cast<std::uint64_t>(args.number("sample-ms", 25));
  telemetry::SamplerOptions sampler_options;
  sampler_options.interval_ms = sample_ms > 0 ? sample_ms : 1;
  telemetry::ResourceSampler sampler(sampler_options);
  if (sample_ms > 0) sampler.start();

  const std::uint64_t started = telemetry::monotonic_ns();

  // The full pipeline, end to end: simulate -> assemble trace -> extract
  // states -> train (rank sweep + NMF) -> batch diagnosis.
  scenario::ScenarioBundle bundle = make_scenario_bundle(kind, args, seed);
  if (!json)
    std::printf("profiling '%s': %zu nodes, %.2f h, %zu threads\n",
                kind.c_str(), bundle.config.positions.size(),
                bundle.config.duration / 3600.0, core::num_threads());
  wsn::Simulator sim = bundle.make_simulator();
  const wsn::SimulationResult result = sim.run();
  const trace::Trace log = trace::build_trace(result);
  const auto states = trace::extract_states(log);
  if (states.empty()) {
    std::fprintf(stderr, "profile: scenario produced no states\n");
    return 1;
  }
  core::TrainingOptions options;
  options.rank = static_cast<std::size_t>(args.number("rank", 0));
  options.exception_threshold = args.number("threshold", 0.30);
  const linalg::Matrix state_matrix = trace::states_matrix(states);
  const core::TrainingReport report = core::train(state_matrix, options);
  core::Vn2Tool tool = core::Vn2Tool::from_model(report.model);
  const auto diagnoses = tool.diagnose_states(state_matrix);
  const double elapsed =
      static_cast<double>(telemetry::monotonic_ns() - started) / 1e9;

  std::size_t exceptions = 0;
  for (const core::Diagnosis& d : diagnoses)
    if (d.is_exception) ++exceptions;

  sampler.stop();
  const std::vector<telemetry::ResourceSample> series = sampler.series();
  telemetry::Snapshot snapshot = telemetry::Registry::global().snapshot();
  snapshot.resource_series = series;
  if (json) {
    telemetry::StringSink sink;
    telemetry::write_json(sink, snapshot);
    std::fputs(sink.str().c_str(), stdout);
  } else {
    std::printf("pipeline: %zu states, rank %zu, %zu exceptions, %.3f s\n",
                states.size(), report.chosen_rank, exceptions, elapsed);
    std::sort(
        snapshot.span_stats.begin(), snapshot.span_stats.end(),
        [](const telemetry::SpanStats& a, const telemetry::SpanStats& b) {
          return a.total_ns > b.total_ns;
        });
    // wall = steady-clock elapsed summed over entries; cpu = per-thread
    // CPU time inside the span. cpu >> wall means parallel sections,
    // wall >> cpu means blocking/waiting.
    std::printf("\nspans (top %zu by total time):\n", top);
    std::printf("  %-28s %10s %12s %12s %12s\n", "name", "count", "total ms",
                "mean ms", "cpu ms");
    for (std::size_t i = 0; i < snapshot.span_stats.size() && i < top; ++i) {
      const telemetry::SpanStats& s = snapshot.span_stats[i];
      std::printf("  %-28s %10llu %12.3f %12.3f %12.3f\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) / 1e6,
                  static_cast<double>(s.total_ns) / 1e6 /
                      static_cast<double>(s.count),
                  static_cast<double>(s.total_cpu_ns) / 1e6);
    }
    // The same spans with ancestry: inclusive vs exclusive time per
    // call path (exclusive = inclusive minus children, the self cost).
    std::printf("\ncall tree:\n%s",
                telemetry::render_call_tree(
                    telemetry::build_call_tree(snapshot.path_stats))
                    .c_str());
    std::printf("\ncounters:\n");
    for (const auto& [name, value] : snapshot.counters)
      std::printf("  %-28s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    for (const auto& [name, h] : snapshot.histograms)
      std::printf("  %-28s n=%llu mean=%.0fns min=%lluns max=%lluns\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max));
    if (snapshot.resource.sampled)
      std::printf("\nresources: peak rss %.1f MiB, current %.1f MiB, "
                  "cpu %.3fs user + %.3fs system\n",
                  static_cast<double>(snapshot.resource.peak_rss_bytes) /
                      (1024.0 * 1024.0),
                  static_cast<double>(snapshot.resource.current_rss_bytes) /
                      (1024.0 * 1024.0),
                  static_cast<double>(snapshot.resource.cpu_user_ns) / 1e9,
                  static_cast<double>(snapshot.resource.cpu_system_ns) / 1e9);
    if (!series.empty()) {
      const telemetry::ResourceSample& first = series.front();
      const telemetry::ResourceSample& last = series.back();
      std::printf("resource series: %zu samples @ %llu ms (rss %.1f -> "
                  "%.1f MiB, peak %.1f MiB)\n",
                  series.size(),
                  static_cast<unsigned long long>(sample_ms),
                  static_cast<double>(first.current_rss_bytes) /
                      (1024.0 * 1024.0),
                  static_cast<double>(last.current_rss_bytes) /
                      (1024.0 * 1024.0),
                  static_cast<double>(sampler.peak_rss_bytes()) /
                      (1024.0 * 1024.0));
    }
    std::printf("\nspans dropped: %llu\n",
                static_cast<unsigned long long>(snapshot.spans_dropped));
    if (snapshot.spans_dropped > 0)
      std::printf("warning: %llu raw spans were dropped at the retention "
                  "cap; aggregate stats and the call tree still count "
                  "them, but the chrome trace is incomplete\n",
                  static_cast<unsigned long long>(snapshot.spans_dropped));
  }

  const std::string out = args.get("out");
  if (!out.empty()) write_telemetry_file(out, /*chrome_trace=*/false, &series);
  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty())
    write_telemetry_file(trace_out, /*chrome_trace=*/true);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    // Only `profile --diff` consumes positionals; anywhere else a bare
    // token is a typo worth stopping on.
    if (!args.positional.empty() && command != "profile") {
      std::fprintf(stderr, "vn2 %s: unexpected argument '%s'\n",
                   command.c_str(), args.positional.front().c_str());
      return 2;
    }
    // Global thread budget: applies to every subcommand's hot paths
    // (matmul, rank sweep, batch NNLS, batch simulation).
    if (!args.get("threads").empty())
      vn2::core::set_num_threads(
          static_cast<std::size_t>(args.number("threads", 0)));
    // Global kernel backend: which dense-kernel implementation the linalg
    // hot paths dispatch to (results are backend-independent by contract).
    if (const std::string backend = args.get("linalg-backend");
        !backend.empty()) {
      const auto parsed = vn2::linalg::parse_backend(backend);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "vn2: unknown --linalg-backend '%s' "
                     "(expected auto, reference, blocked, or simd)\n",
                     backend.c_str());
        return 2;
      }
      // Forcing simd must fail loudly when this build/host cannot run it;
      // "auto" (resolved inside parse_backend) never selects it in that
      // case, and set_backend() would silently fall back.
      if (*parsed == vn2::linalg::Backend::kSimd &&
          !vn2::linalg::simd_available()) {
        const char* reason = vn2::linalg::simd_kernels_compiled()
                                 ? "host CPU lacks the required features"
                                 : "this build compiled the simd kernels out";
        std::fprintf(stderr, "vn2: --linalg-backend simd: %s (detected: %s)\n",
                     reason, vn2::linalg::cpu_features_summary().c_str());
        return 2;
      }
      vn2::linalg::set_backend(*parsed);
    }
    // Global telemetry outputs: written after any successful subcommand.
    auto dispatch = [&]() -> std::optional<int> {
      if (command == "simulate") return cmd_simulate(args);
      if (command == "train") return cmd_train(args);
      if (command == "inspect") return cmd_inspect(args);
      if (command == "diagnose") return cmd_diagnose(args);
      if (command == "incidents") return cmd_incidents(args);
      if (command == "silent") return cmd_silent(args);
      if (command == "stats") return cmd_stats(args);
      if (command == "profile") return cmd_profile(args);
      return std::nullopt;
    };
    const std::optional<int> status = dispatch();
    if (status.has_value()) {
      const std::string snapshot_path = args.get("telemetry");
      if (!snapshot_path.empty() && *status == 0)
        write_telemetry_file(snapshot_path, /*chrome_trace=*/false);
      const std::string trace_path = args.get("telemetry-trace");
      if (!trace_path.empty() && *status == 0)
        write_telemetry_file(trace_path, /*chrome_trace=*/true);
      return *status;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vn2 %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  return usage();
}
