// vn2_benchstat — the performance observatory's comparator and gate.
//
// Reads bench records (BENCH_*.json emitted by the bench/ binaries) and
// compares them against a checked-in baseline with noise-aware
// thresholds; see src/benchstat/gate.hpp for the gate semantics.
//
// Usage:
//   vn2_benchstat --baseline bench_baseline.json RUN...
//   vn2_benchstat BASE_RECORD RUN_RECORD           (two-record mode)
//
// RUN arguments are record files or directories, which are scanned for
// BENCH_*.json. Options:
//   --floor F     relative-delta floor for gated metrics (default 0.15)
//   --strict      baseline benches missing from the run fail the gate
//   --markdown    render a GitHub-flavoured markdown table
//   --update      shrink-only baseline refresh (refuses on regression)
//
// Exit codes mirror vn2-lint: 0 = gate passed, 1 = gate failed (or a
// refused --update), 2 = usage or parse error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "benchstat/gate.hpp"
#include "benchstat/record.hpp"
#include "telemetry/sink.hpp"

namespace {

constexpr int kExitPass = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 2;

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: vn2_benchstat [--baseline FILE] [--floor F] "
               "[--strict] [--markdown] [--update] RUN...\n"
               "       vn2_benchstat BASE_RECORD RUN_RECORD\n"
               "RUN is a BENCH_*.json record or a directory of them.\n");
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char buffer[4096];
  out.clear();
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
    out.append(buffer, got);
  std::fclose(file);
  return true;
}

/// Expands files/directories into the sorted list of record paths.
/// Directories contribute their BENCH_*.json entries.
bool collect_paths(const std::vector<std::string>& args,
                   std::vector<std::string>& paths) {
  for (const std::string& arg : args) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
            name.rfind(".json") == name.size() - 5)
          found.push_back(entry.path().string());
      }
      if (found.empty()) {
        std::fprintf(stderr, "vn2_benchstat: no BENCH_*.json in %s\n",
                     arg.c_str());
        return false;
      }
      std::sort(found.begin(), found.end());
      paths.insert(paths.end(), found.begin(), found.end());
    } else {
      paths.push_back(arg);
    }
  }
  return true;
}

bool load_records(const std::vector<std::string>& paths,
                  std::vector<vn2::benchstat::Record>& records) {
  for (const std::string& path : paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "vn2_benchstat: cannot read %s\n", path.c_str());
      return false;
    }
    try {
      records.push_back(vn2::benchstat::read_record(text));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "vn2_benchstat: %s: %s\n", path.c_str(),
                   error.what());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::vector<std::string> positional;
  vn2::benchstat::GateOptions options;
  bool markdown = false;
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--floor" && i + 1 < argc) {
      char* end = nullptr;
      options.relative_floor = std::strtod(argv[++i], &end);
      if (end == argv[i] || options.relative_floor < 0.0) {
        std::fprintf(stderr, "vn2_benchstat: bad --floor value '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--markdown") {
      markdown = true;
    } else if (arg == "--update") {
      update = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return kExitPass;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "vn2_benchstat: unknown option '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return kExitUsage;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    print_usage(stderr);
    return kExitUsage;
  }

  vn2::benchstat::Baseline baseline;
  std::vector<std::string> run_args = positional;
  if (baseline_path.empty()) {
    // Two-record mode: the first positional record acts as the baseline.
    if (positional.size() != 2) {
      std::fprintf(stderr,
                   "vn2_benchstat: need --baseline FILE, or exactly two "
                   "record files for a pairwise comparison\n");
      return kExitUsage;
    }
    if (update) {
      std::fprintf(stderr,
                   "vn2_benchstat: --update requires --baseline FILE\n");
      return kExitUsage;
    }
    std::vector<vn2::benchstat::Record> base_records;
    if (!load_records({positional[0]}, base_records)) return kExitUsage;
    baseline.records = std::move(base_records);
    run_args = {positional[1]};
  } else {
    std::string text;
    if (read_file(baseline_path, text)) {
      try {
        baseline = vn2::benchstat::read_baseline(text);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "vn2_benchstat: %s: %s\n", baseline_path.c_str(),
                     error.what());
        return kExitUsage;
      }
    } else if (!update) {
      // A missing baseline is only legitimate when bootstrapping via
      // --update; a gate run against nothing would vacuously pass.
      std::fprintf(stderr, "vn2_benchstat: cannot read baseline %s\n",
                   baseline_path.c_str());
      return kExitUsage;
    }
  }

  std::vector<std::string> run_paths;
  if (!collect_paths(run_args, run_paths)) return kExitUsage;
  std::vector<vn2::benchstat::Record> run;
  if (!load_records(run_paths, run)) return kExitUsage;

  if (update) {
    const auto result = vn2::benchstat::ratchet_update(baseline, run, options);
    if (result.refused) {
      std::fprintf(stderr, "vn2_benchstat: refusing update: %s\n",
                   result.reason.c_str());
      return kExitFail;
    }
    vn2::telemetry::StringSink sink;
    vn2::benchstat::write_baseline(sink, result.baseline);
    std::FILE* out = std::fopen(baseline_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "vn2_benchstat: cannot write %s\n",
                   baseline_path.c_str());
      return kExitUsage;
    }
    std::fputs(sink.str().c_str(), out);
    std::fclose(out);
    std::printf("vn2_benchstat: baseline %s updated (%zu records)\n",
                baseline_path.c_str(), result.baseline.records.size());
    return kExitPass;
  }

  const auto report = vn2::benchstat::compare(baseline, run, options);
  const std::string rendered =
      markdown ? vn2::benchstat::render_markdown(report)
               : vn2::benchstat::render_text(report);
  std::fputs(rendered.c_str(), stdout);
  return report.failed() ? kExitFail : kExitPass;
}
