// vn2_profdiff — compare two `vn2 profile --json` snapshots by call-tree
// path and gate on regressions, the profile-level sibling of
// vn2_benchstat's bench-record gate.
//
//   vn2_profdiff [--floor F] [--min-ns N] [--markdown] base.json run.json
//
// Exit codes (same contract as vn2_benchstat):
//   0  no path regressed past the floors
//   1  at least one path regressed (report printed to stdout)
//   2  usage error or unreadable/malformed input
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/calltree.hpp"
#include "telemetry/profdiff.hpp"

namespace {

constexpr int kExitPass = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 2;

int print_usage() {
  std::fprintf(
      stderr,
      "usage: vn2_profdiff [--floor F] [--min-ns N] [--markdown] "
      "base.json run.json\n"
      "  --floor F    relative regression floor (default 0.15 = 15%%)\n"
      "  --min-ns N   absolute floor in ns; smaller moves are noise\n"
      "               (default 1000000 = 1 ms)\n"
      "  --markdown   render a markdown table instead of plain text\n");
  return kExitUsage;
}

std::string read_file(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr)
    throw std::runtime_error(std::string("cannot open: ") + path);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
    text.append(buffer, got);
  std::fclose(file);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  vn2::telemetry::ProfDiffOptions options;
  bool markdown = false;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--markdown") == 0) {
      markdown = true;
    } else if (std::strcmp(argv[i], "--floor") == 0) {
      if (++i >= argc) return print_usage();
      char* end = nullptr;
      options.relative_floor = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || options.relative_floor < 0.0) {
        std::fprintf(stderr, "vn2_profdiff: bad --floor '%s'\n", argv[i]);
        return kExitUsage;
      }
    } else if (std::strcmp(argv[i], "--min-ns") == 0) {
      if (++i >= argc) return print_usage();
      char* end = nullptr;
      const double ns = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || ns < 0.0) {
        std::fprintf(stderr, "vn2_profdiff: bad --min-ns '%s'\n", argv[i]);
        return kExitUsage;
      }
      options.min_delta_ns = static_cast<std::uint64_t>(ns);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "vn2_profdiff: unknown option '%s'\n", argv[i]);
      return print_usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2) return print_usage();

  vn2::telemetry::ProfDiffReport report;
  try {
    const auto base = vn2::telemetry::read_call_tree_json(read_file(paths[0]));
    const auto run = vn2::telemetry::read_call_tree_json(read_file(paths[1]));
    report = vn2::telemetry::diff_call_trees(base, run, options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vn2_profdiff: %s\n", error.what());
    return kExitUsage;
  }
  const std::string rendered = markdown
                                   ? vn2::telemetry::render_markdown(report)
                                   : vn2::telemetry::render_text(report);
  std::fputs(rendered.c_str(), stdout);
  return report.failed() ? kExitFail : kExitPass;
}
