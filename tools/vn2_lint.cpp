// vn2-lint implementation (v2). See vn2_lint.hpp for the contract and
// DESIGN.md for the rule catalogue. The engine is layered:
//
//   tools/lint/lexer.cpp  — one scan per file: token stream + blanked
//                           line view + suppression sets
//   tools/lint/scope.cpp  — bracket matching, function/lambda/loop
//                           extraction, header declaration collection
//   tools/lint/sarif.cpp  — SARIF 2.1.0 writer/parser + baseline diff
//   this file             — the rules, the tree walk, and the CLI
//
// The eleven v1 line rules still match against the blanked line view
// (which the lexer reproduces byte-for-byte), so their findings are
// bit-identical to v1; the four v2 semantic rules
// (unchecked-public-entry, lock-in-parallel-body, alloc-in-kernel,
// throw-across-parallel) work on the token stream and the scope facts.
// Everything is deliberately std-only so the checker builds in seconds
// on any toolchain and can gate CI without pulling in a compiler
// frontend.
#include "vn2_lint.hpp"

#include "lint/lexer.hpp"
#include "lint/sarif.hpp"
#include "lint/scope.hpp"

// GCC attributes -Wmaybe-uninitialized false positives to <functional>
// internals when std::regex is instantiated under -fsanitize=undefined
// (GCC PR105562), so silence that one diagnostic for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace vn2::lint {

namespace {

// ---------------------------------------------------------------------------
// Path scoping helpers. Paths are repo-relative with forward slashes.

bool starts_with(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

bool in_numeric_kernels(const std::string& path) {
  return starts_with(path, "src/linalg/") || starts_with(path, "src/nmf/");
}

bool is_library_code(const std::string& path) {
  return starts_with(path, "src/");
}

// The sanctioned exception files: seeded RNG lives in linalg/random, the
// simulator owns the (virtual) clock, and the telemetry layer owns the
// one real (monotonic) clock used for span timing.
bool is_random_home(const std::string& path) {
  return starts_with(path, "src/linalg/random.");
}

bool is_clock_home(const std::string& path) {
  return starts_with(path, "src/wsn/simulator.") ||
         starts_with(path, "src/telemetry/");
}

// The parallel layer implements the capture/rethrow machinery and the
// pool's own locking, so the parallel-body rules never apply to it.
bool is_parallel_layer(const std::string& path) {
  return starts_with(path, "src/core/parallel.");
}

// ---------------------------------------------------------------------------
// Simple regex-per-line rules (v1-compatible).

struct PatternRule {
  const char* id;
  const char* message;
  std::regex pattern;
  bool (*applies)(const std::string& path);
};

const std::vector<PatternRule>& pattern_rules() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    r.push_back({"nondeterminism-random",
                 "nondeterministic RNG in analysis code; use the seeded "
                 "generators in linalg/random",
                 std::regex(R"((\brand\s*\()|(\bsrand\s*\()|(std::random_device))"),
                 [](const std::string& p) { return !is_random_home(p); }});
    r.push_back({"nondeterminism-clock",
                 "wall-clock time in analysis code; results must not depend "
                 "on when they run (simulator time and telemetry's "
                 "monotonic_ns are the only clocks)",
                 std::regex(R"((std::chrono::\w*_clock::now)|(\btime\s*\()|(\bclock\s*\()|(\bgettimeofday\s*\())"),
                 [](const std::string& p) { return !is_clock_home(p); }});
    r.push_back({"float-in-numeric",
                 "float in a numeric kernel; linalg/nmf compute in double "
                 "only (bit-identical parallel results depend on it)",
                 std::regex(R"(\bfloat\b)"),
                 [](const std::string& p) { return in_numeric_kernels(p); }});
    r.push_back({"io-in-library",
                 "direct stdout/stderr IO in library code; route output "
                 "through the trace layer or return it to the caller",
                 std::regex(R"((std::cout)|(std::cerr)|(\bprintf\s*\()|(\bfprintf\s*\()|(\bputs\s*\())"),
                 [](const std::string& p) { return is_library_code(p) &&
                                                   !starts_with(p, "src/trace/"); }});
    r.push_back({"using-namespace-header",
                 "using namespace in a header leaks into every includer",
                 std::regex(R"(\busing\s+namespace\b)"),
                 [](const std::string& p) { return is_header(p); }});
    // naked-new needs a lookbehind (`= delete` is fine) that std::regex
    // lacks, so lint_content dispatches it to naked_new_matches instead of
    // this placeholder pattern.
    r.push_back({"naked-new",
                 "naked new/delete; use containers or smart pointers so "
                 "ownership is explicit and exception-safe",
                 std::regex(R"(\b(new|delete)\b)"),
                 [](const std::string&) { return true; }});
    // Sparsity shortcuts of the form `if (x == 0.0) continue;` silently
    // turn 0·NaN into 0 (IEEE says NaN), hide Inf, and make the kernel's
    // runtime depend on the data. Kernels must stream every entry; loops
    // whose inputs are provably finite may suppress with a justification.
    r.push_back({"zero-skip-kernel",
                 "data-dependent zero-skip in a numeric kernel; 0*NaN must "
                 "stay NaN and runtime must not depend on the data "
                 "(suppress only where inputs are provably finite)",
                 std::regex(R"(==\s*0(\.0*)?\s*\)\s*continue\b)"),
                 [](const std::string& p) { return in_numeric_kernels(p); }});
    // Default-constructed engines seed from a fixed constant, which reads
    // like determinism but silently correlates every such stream. The
    // identifier must not end in '_': members are seeded in a constructor
    // initializer the line can't see.
    r.push_back({"unseeded-mt19937",
                 "default-constructed std::mt19937; every engine must take "
                 "an explicit seed (see linalg/random)",
                 std::regex(R"(\bstd::mt19937(?:_64)?\s+(?:[A-Za-z_]\w*[A-Za-z0-9]|[A-Za-z])\s*(?:;|\{\s*\}|\(\s*\)))"),
                 [](const std::string& p) { return !is_random_home(p); }});
    return r;
  }();
  return rules;
}

// std::regex has no lookbehind; handle the `= delete` / `delete;` special
// cases by hand instead of in the pattern above.
bool naked_new_matches(const std::string& code, std::size_t& pos) {
  static const std::regex kNewDelete(R"(\b(new|delete)\b)");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kNewDelete);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::smatch& m = *it;
    const std::string word = m[1].str();
    const std::size_t at = static_cast<std::size_t>(m.position(1));
    if (word == "delete") {
      // `= delete` (deleted special member) is fine; so is `= delete;`.
      std::size_t q = at;
      while (q > 0 && std::isspace(static_cast<unsigned char>(code[q - 1])))
        --q;
      if (q > 0 && code[q - 1] == '=') continue;
    }
    pos = at;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Header hygiene: every header needs `#pragma once` (house style) or a
// classic include guard.

void check_include_guard(const std::string& path, const TokenStream& src,
                         std::vector<Finding>& findings) {
  if (!is_header(path)) return;
  bool guarded = false;
  for (std::size_t i = 0; i < src.lines.size() && !guarded; ++i) {
    const std::string& l = src.lines[i];
    if (l.find("#pragma once") != std::string::npos) guarded = true;
    if (l.find("#ifndef") != std::string::npos &&
        i + 1 < src.lines.size() &&
        src.lines[i + 1].find("#define") != std::string::npos)
      guarded = true;
  }
  if (!guarded)
    findings.push_back({path, 1, "include-guard",
                        "header lacks #pragma once or an include guard"});
}

// ---------------------------------------------------------------------------
// parallel_for capture hygiene.
//
// The determinism promise of the parallel layer is "write only to
// index-owned slots". A write to a bare `&`-captured local from inside a
// parallel_for body is almost always a data race, so we flag it. The
// heuristic is textual: inside each inline lambda passed to parallel_for,
// flag `x = ...`, `x op= ...`, `++x` / `x++` where `x` is a plain
// identifier (no subscript/member/call syntax, which index-owned writes
// use) that is neither declared inside the body nor the loop parameter.

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "if", "else", "for", "while", "do", "switch", "case", "return",
      "break", "continue", "auto", "const", "constexpr", "static", "double",
      "float", "int", "bool", "char", "long", "unsigned", "signed", "void",
      "sizeof", "true", "false", "new", "delete", "this", "using", "typedef"};
  return kw;
}

/// Finds the matching close brace/paren/bracket for the opener at `open`.
std::size_t find_balanced(const std::string& text, std::size_t open,
                          char open_ch, char close_ch) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) ++depth;
    if (text[i] == close_ch && --depth == 0) return i;
  }
  return std::string::npos;
}

struct LambdaInfo {
  std::string captures;        ///< text inside [ ]
  std::string params;          ///< text inside ( )
  std::string body;            ///< text inside { }
  std::size_t body_start_line; ///< 1-based line of the opening brace
};

/// Identifiers declared anywhere in the body (type-name preceded writes,
/// loop variables, reference bindings). Over-collecting is safe — it only
/// makes the rule quieter.
std::set<std::string> declared_names(const std::string& body) {
  std::set<std::string> names;
  static const std::regex kDecl(
      R"(([A-Za-z_][\w:<>]*[\s&*]+|auto[\s&*]+)([A-Za-z_]\w*)\s*(=|;|\{|:))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kDecl);
       it != std::sregex_iterator(); ++it)
    names.insert((*it)[2].str());
  return names;
}

std::set<std::string> param_names(const std::string& params) {
  std::set<std::string> names;
  static const std::regex kParam(R"(([A-Za-z_]\w*)\s*(,|$))");
  for (auto it = std::sregex_iterator(params.begin(), params.end(), kParam);
       it != std::sregex_iterator(); ++it)
    names.insert((*it)[1].str());
  return names;
}

void check_lambda_writes(const std::string& path, const LambdaInfo& lambda,
                         std::vector<Finding>& findings) {
  if (lambda.captures.find('&') == std::string::npos) return;

  // Explicit by-reference capture names ([&x, y] style); empty for [&].
  std::set<std::string> by_ref;
  bool blanket = false;
  {
    static const std::regex kCap(R"(&\s*([A-Za-z_]\w*)?)");
    for (auto it = std::sregex_iterator(lambda.captures.begin(),
                                        lambda.captures.end(), kCap);
         it != std::sregex_iterator(); ++it) {
      if ((*it)[1].matched)
        by_ref.insert((*it)[1].str());
      else
        blanket = true;
    }
  }

  const std::set<std::string> declared = declared_names(lambda.body);
  const std::set<std::string> params = param_names(lambda.params);

  // `x =` (not ==/<=/...), `x op=`, `++x`, `x++` on a bare identifier.
  static const std::regex kWrite(
      R"((\+\+|--)\s*([A-Za-z_]\w*)|([A-Za-z_]\w*)\s*(\+\+|--|(?:[+\-*/%|&^]|<<|>>)?=(?![=])))");
  std::size_t line = lambda.body_start_line;
  std::istringstream stream(lambda.body);
  std::string body_line;
  while (std::getline(stream, body_line)) {
    for (auto it = std::sregex_iterator(body_line.begin(), body_line.end(),
                                        kWrite);
         it != std::sregex_iterator(); ++it) {
      const std::smatch& m = *it;
      const bool prefix = m[2].matched;
      const std::string name = prefix ? m[2].str() : m[3].str();
      if (!prefix) {
        // Reject comparisons (== already excluded) and `<= >=` matches of
        // the form `x <... =`: the op group guarantees an assignment or
        // increment, but `x ==` slips through as `x =` when the regex
        // starts mid-token; guard on the char after the match.
        const std::size_t after =
            static_cast<std::size_t>(m.position(0) + m.length(0));
        if (after < body_line.size() && body_line[after] == '=') continue;
        // Bare-identifier writes only: subscripts / members / calls write
        // through an index-owned slot or an object, which is the sanctioned
        // pattern (out[i] = ..., point.rank = ..., w(i, r) = ...).
        const std::size_t name_end =
            static_cast<std::size_t>(m.position(3) + m.length(3));
        std::size_t q = name_end;
        while (q < body_line.size() &&
               std::isspace(static_cast<unsigned char>(body_line[q])))
          ++q;
        if (q < body_line.size() && (body_line[q] == '[' ||
                                     body_line[q] == '(' ||
                                     body_line[q] == '.' ||
                                     (body_line[q] == '-' &&
                                      q + 1 < body_line.size() &&
                                      body_line[q + 1] == '>')))
          continue;
        // Declarations (`Type name = ...`): preceding token is part of a
        // type name.
        std::size_t p = static_cast<std::size_t>(m.position(3));
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(body_line[p - 1])))
          --p;
        if (p > 0) {
          const char before = body_line[p - 1];
          // Preceding type token => declaration; preceding '.'/'->' =>
          // member write through an object, which is the object's business.
          if (std::isalnum(static_cast<unsigned char>(before)) ||
              before == '_' || before == '>' || before == '*' ||
              before == '&' || before == ':' || before == '.')
            continue;
        }
      }
      if (cpp_keywords().count(name)) continue;
      if (declared.count(name) || params.count(name)) continue;
      if (!blanket && !by_ref.count(name)) continue;
      findings.push_back(
          {path, line, "parallel-capture",
           "write to '&'-captured local '" + name +
               "' inside a parallel_for body; writes must go to "
               "index-owned slots (or use a per-task local + reduction)"});
    }
    ++line;
  }
}

void check_parallel_captures(const std::string& path, const TokenStream& src,
                             std::vector<Finding>& findings) {
  // Work on the joined stripped text so lambdas spanning lines are seen.
  std::string joined;
  std::vector<std::size_t> line_of_offset;
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    for (std::size_t j = 0; j <= src.lines[i].size(); ++j)
      line_of_offset.push_back(i + 1);
    joined += src.lines[i];
    joined += '\n';
  }

  std::size_t search = 0;
  while ((search = joined.find("parallel_for", search)) != std::string::npos) {
    const std::size_t call_open = joined.find('(', search);
    search += 12;  // length of "parallel_for"
    if (call_open == std::string::npos) continue;
    const std::size_t call_close =
        find_balanced(joined, call_open, '(', ')');
    if (call_close == std::string::npos) continue;

    // Inline lambda argument, if any.
    const std::size_t cap_open = joined.find('[', call_open);
    if (cap_open == std::string::npos || cap_open > call_close) continue;
    const std::size_t cap_close = find_balanced(joined, cap_open, '[', ']');
    if (cap_close == std::string::npos) continue;
    LambdaInfo lambda;
    lambda.captures =
        joined.substr(cap_open + 1, cap_close - cap_open - 1);
    const std::size_t par_open = joined.find('(', cap_close);
    if (par_open != std::string::npos && par_open < call_close) {
      const std::size_t par_close =
          find_balanced(joined, par_open, '(', ')');
      if (par_close != std::string::npos)
        lambda.params = joined.substr(par_open + 1, par_close - par_open - 1);
    }
    const std::size_t body_open = joined.find('{', cap_close);
    if (body_open == std::string::npos) continue;
    const std::size_t body_close =
        find_balanced(joined, body_open, '{', '}');
    if (body_close == std::string::npos) continue;
    lambda.body = joined.substr(body_open + 1, body_close - body_open - 1);
    lambda.body_start_line = line_of_offset[std::min(
        body_open, line_of_offset.size() - 1)];
    check_lambda_writes(path, lambda, findings);
  }
}

// ---------------------------------------------------------------------------
// Threading inventory: DESIGN.md enumerates every file sanctioned to call
// parallel_for, so a new call site forces a (reviewed) doc update. The
// parallel layer itself is exempt — it defines the function.

void check_parallel_inventory(const std::string& path, const TokenStream& src,
                              const LintOptions& options,
                              std::vector<Finding>& findings) {
  if (!options.threading_inventory) return;
  if (is_parallel_layer(path)) return;
  if (options.threading_inventory->count(path)) return;
  static const std::regex kCall(R"(\bparallel_for\s*\()");
  for (std::size_t i = 0; i < src.lines.size(); ++i)
    if (std::regex_search(src.lines[i], kCall))
      findings.push_back(
          {path, i + 1, "parallel-inventory",
           "parallel_for call site not listed in DESIGN.md's threading "
           "inventory; add the file there (and justify the parallelism)"});
}

// ---------------------------------------------------------------------------
// v2 semantic rules (token/scope based).

/// unchecked-public-entry: a definition of a function the public headers
/// declare must execute a contract check (VN2_CHECK / VN2_REQUIRE /
/// VN2_ASSERT) before the first use of any parameter — the "validate at
/// the boundary" discipline DESIGN.md promises for the API surface.
void check_unchecked_public_entry(const std::string& path,
                                  const TokenStream& src,
                                  const BracketMap& brackets,
                                  const LintOptions& options,
                                  std::vector<Finding>& findings) {
  if (!options.public_api) return;
  if (!is_library_code(path) || is_header(path)) return;
  static const std::set<std::string> kContracts = {
      "VN2_CHECK", "VN2_REQUIRE", "VN2_ASSERT"};
  // A use inside an `if (...)` whose guarded statement throws or returns
  // is itself boundary validation (the hand-rolled precondition idiom),
  // and satisfies the rule just like a contract macro does.
  const auto guard_clause_validates = [&](const std::vector<std::size_t>&
                                              open_parens) {
    for (auto it = open_parens.rbegin(); it != open_parens.rend(); ++it) {
      std::size_t q = *it;
      // Previous significant token before the '('.
      while (q > 0 && src.tokens[q - 1].preprocessor) --q;
      if (q == 0 || !src.tokens[q - 1].ident("if")) continue;
      std::size_t after = brackets.match(*it);
      if (after >= src.tokens.size()) return false;
      ++after;
      while (after < src.tokens.size() &&
             (src.tokens[after].preprocessor || src.tokens[after].is("{")))
        ++after;
      if (after >= src.tokens.size()) return false;
      const Token& head = src.tokens[after];
      return head.ident("throw") || head.ident("return") ||
             kContracts.count(head.text) > 0;
    }
    return false;
  };

  // Only *risky* uses demand a prior check: a parameter consumed in an
  // index or address computation (subscripts, pointer/index arithmetic).
  // Reading a parameter's value whole — forwarding it, returning it,
  // calling a member on it, comparing it — carries no precondition of
  // its own, and contracting those would be exactly the tautology
  // DESIGN.md bans.
  const auto is_arith = [](const Token& t) {
    return t.kind == TokenKind::kPunct &&
           (t.is("+") || t.is("-") || t.is("*") || t.is("/") || t.is("%"));
  };

  for (const FunctionDef& fn : extract_functions(src, brackets)) {
    if (!options.public_api->count(fn.name) || fn.params.empty()) continue;
    // A noexcept function promises totality instead of throwing on bad
    // input — contract macros (which throw) are the wrong tool there, so
    // the boundary-validation discipline does not apply.
    bool is_noexcept = false;
    for (std::size_t k = fn.body.begin >= 8 ? fn.body.begin - 8 : 0;
         k < fn.body.begin; ++k)
      if (src.tokens[k].ident("noexcept")) is_noexcept = true;
    if (is_noexcept) continue;
    const std::set<std::string> params(fn.params.begin(), fn.params.end());
    std::set<std::string> validated;        // params a guard already vetted
    std::vector<std::size_t> open_parens;   // enclosing '(' token indices
    std::vector<bool> bracket_is_subscript; // '[' stack: postfix subscript?
    std::size_t subscript_depth = 0;        // enclosing postfix '[' groups
    bool in_throw = false;                  // inside a throw statement
    bool flagged = false;
    for (std::size_t i = fn.body.begin; i < fn.body.end && !flagged; ++i) {
      const Token& t = src.tokens[i];
      if (t.preprocessor) continue;
      if (t.kind == TokenKind::kPunct) {
        if (t.is("(")) open_parens.push_back(i);
        if (t.is(")") && !open_parens.empty()) open_parens.pop_back();
        if (t.is("[")) {
          // A '[' is a subscript only in postfix position (after an
          // identifier, ')' or ']'); anything else — notably a lambda
          // capture list — indexes nothing.
          const Token* prev = i > fn.body.begin ? &src.tokens[i - 1] : nullptr;
          const bool postfix =
              prev && ((prev->kind == TokenKind::kIdentifier &&
                        !is_keyword(prev->text)) ||
                       prev->is(")") || prev->is("]"));
          bracket_is_subscript.push_back(postfix);
          if (postfix) ++subscript_depth;
        }
        if (t.is("]") && !bracket_is_subscript.empty()) {
          if (bracket_is_subscript.back() && subscript_depth > 0)
            --subscript_depth;
          bracket_is_subscript.pop_back();
        }
        if (t.is(";")) in_throw = false;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      if (kContracts.count(t.text)) break;  // checked before any use
      // Calling a validation helper (require, check_index, …) is the
      // project's other precondition idiom; credit it like a macro.
      if (i + 1 < fn.body.end && src.tokens[i + 1].is("(")) {
        std::string low;
        for (char c : t.text)
          low.push_back(static_cast<char>(
              std::tolower(static_cast<unsigned char>(c))));
        if (low.find("check") != std::string::npos ||
            low.find("require") != std::string::npos ||
            low.find("assert") != std::string::npos ||
            low.find("validate") != std::string::npos)
          break;
      }
      if (t.ident("throw")) in_throw = true;
      if (!params.count(t.text)) continue;
      // Qualified-name tails and member accesses are not parameter uses.
      if (i > fn.body.begin) {
        const Token& prev = src.tokens[i - 1];
        if (prev.is("::") || prev.is(".") || prev.is("->")) continue;
      }
      // A use inside a validating guard's condition vets the parameter —
      // every later use of it is downstream of the check.
      if (guard_clause_validates(open_parens)) {
        validated.insert(t.text);
        continue;
      }
      // Uses inside a throw statement are error reporting, not risk.
      if (in_throw || validated.count(t.text)) continue;
      // `p.member()` / `p->member`: the parameter itself is read whole;
      // any adjacent operator applies to the member's result, not to p.
      if (i + 1 < fn.body.end &&
          (src.tokens[i + 1].is(".") || src.tokens[i + 1].is("->")))
        continue;
      const bool next_subscripts =
          i + 1 < fn.body.end && src.tokens[i + 1].is("[");
      const bool in_arith =
          (i > fn.body.begin && is_arith(src.tokens[i - 1])) ||
          (i + 1 < fn.body.end && is_arith(src.tokens[i + 1]));
      if (!next_subscripts && subscript_depth == 0 && !in_arith)
        continue;  // benign whole-value use; keep scanning
      findings.push_back(
          {path, t.line, "unchecked-public-entry",
           "public entry '" + fn.name + "' uses parameter '" + t.text +
               "' in an index/arithmetic position before any "
               "VN2_CHECK/VN2_REQUIRE; validate inputs at the boundary "
               "first (or suppress with a justification)"});
      flagged = true;
    }
  }
}

/// lock-in-parallel-body: no mutex/lock acquisition inside a parallel_for
/// lambda — the deterministic threading model forbids cross-task
/// synchronization (write to index-owned slots, reduce after the join).
void check_lock_in_parallel(const std::string& path, const TokenStream& src,
                            const BracketMap& brackets,
                            std::vector<Finding>& findings) {
  if (is_parallel_layer(path)) return;
  static const std::set<std::string> kLockTypes = {
      "mutex", "timed_mutex", "recursive_mutex", "shared_mutex",
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  for (const ParallelLambda& lambda : find_parallel_lambdas(src, brackets)) {
    std::size_t last_line = 0;  // one acquisition, one finding per line
    for (std::size_t i = lambda.body.begin; i < lambda.body.end; ++i) {
      const Token& t = src.tokens[i];
      if (t.preprocessor || t.kind != TokenKind::kIdentifier) continue;
      const bool member_lock =
          (t.is("lock") || t.is("try_lock") || t.is("lock_shared")) &&
          i > lambda.body.begin &&
          (src.tokens[i - 1].is(".") || src.tokens[i - 1].is("->"));
      if (!kLockTypes.count(t.text) && !member_lock) continue;
      if (t.line == last_line) continue;
      last_line = t.line;
      findings.push_back(
          {path, t.line, "lock-in-parallel-body",
           "mutex/lock acquisition ('" + t.text +
               "') inside a parallel_for body; the deterministic "
               "threading model forbids cross-task synchronization — "
               "write to index-owned slots and reduce after the join"});
    }
  }
}

/// alloc-in-kernel: the linalg kernel loops must be allocation-free —
/// no new, no container growth, no Matrix temporaries. Buffers belong in
/// the caller's workspace (see nmf::Workspace / linalg::NnlsWorkspace).
/// Applies to every kernel TU: the scalar backends (kernels.cpp) and the
/// simd backend (kernels_simd.cpp).
void check_alloc_in_kernel(const std::string& path, const TokenStream& src,
                           const BracketMap& brackets,
                           std::vector<Finding>& findings) {
  if (path != "src/linalg/kernels.cpp" &&
      path != "src/linalg/kernels_simd.cpp")
    return;
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back", "resize", "reserve", "insert"};
  std::set<std::size_t> flagged;  // token indices, deduped across nests
  for (const TokenRange& loop :
       find_loop_bodies(src, brackets, {0, src.tokens.size()})) {
    for (std::size_t i = loop.begin; i < loop.end && i < src.tokens.size();
         ++i) {
      const Token& t = src.tokens[i];
      if (t.preprocessor || t.kind != TokenKind::kIdentifier) continue;
      const bool is_new = t.is("new");
      const bool is_growth =
          kGrowth.count(t.text) && i > loop.begin &&
          (src.tokens[i - 1].is(".") || src.tokens[i - 1].is("->"));
      const bool is_matrix_ctor =
          t.is("Matrix") && i + 1 < loop.end &&
          (src.tokens[i + 1].kind == TokenKind::kIdentifier ||
           src.tokens[i + 1].is("(") || src.tokens[i + 1].is("{"));
      const bool is_vector_decl =
          t.is("vector") && i > loop.begin && src.tokens[i - 1].is("::");
      if (!(is_new || is_growth || is_matrix_ctor || is_vector_decl))
        continue;
      if (!flagged.insert(i).second) continue;
      findings.push_back(
          {path, t.line, "alloc-in-kernel",
           "allocation ('" + t.text +
               "') inside a kernel loop body; hot kernels must be "
               "allocation-free — hoist buffers into the caller's "
               "workspace"});
    }
  }
}

/// throw-across-parallel: a raw `throw` inside a parallel_for body
/// bypasses the documented exception-capture idiom. Errors cross the
/// task boundary either through a contract macro (parallel_for captures
/// and rethrows the first exception) or an index-owned error slot.
void check_throw_across_parallel(const std::string& path,
                                 const TokenStream& src,
                                 const BracketMap& brackets,
                                 std::vector<Finding>& findings) {
  if (is_parallel_layer(path)) return;
  for (const ParallelLambda& lambda : find_parallel_lambdas(src, brackets)) {
    for (std::size_t i = lambda.body.begin; i < lambda.body.end; ++i) {
      const Token& t = src.tokens[i];
      if (t.preprocessor || !t.ident("throw")) continue;
      findings.push_back(
          {path, t.line, "throw-across-parallel",
           "raw throw inside a parallel_for body; route errors through "
           "VN2_CHECK/VN2_REQUIRE (the capture idiom rethrows the first "
           "contract violation on the caller) or an index-owned error "
           "slot"});
    }
  }
}

void apply_suppressions(const TokenStream& src,
                        std::vector<Finding>& findings) {
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       auto it = src.allowed.find(f.line);
                       return it != src.allowed.end() &&
                              it->second.count(f.rule) > 0;
                     }),
      findings.end());
}

}  // namespace

std::vector<std::string> rule_ids() {
  std::vector<std::string> ids;
  for (const auto& [id, description] : rule_catalogue()) {
    (void)description;
    ids.push_back(id);
  }
  return ids;
}

std::vector<std::pair<std::string, std::string>> rule_catalogue() {
  std::vector<std::pair<std::string, std::string>> rules;
  for (const PatternRule& rule : pattern_rules())
    rules.emplace_back(rule.id, rule.message);
  rules.emplace_back("include-guard",
                     "header lacks #pragma once or an include guard");
  rules.emplace_back(
      "parallel-capture",
      "write to a '&'-captured local inside a parallel_for body; writes "
      "must go to index-owned slots");
  rules.emplace_back(
      "parallel-inventory",
      "parallel_for call site not listed in DESIGN.md's threading "
      "inventory");
  rules.emplace_back(
      "unchecked-public-entry",
      "public API definition uses a parameter before any "
      "VN2_CHECK/VN2_REQUIRE contract check");
  rules.emplace_back(
      "lock-in-parallel-body",
      "mutex/lock acquisition inside a parallel_for body; the "
      "deterministic threading model forbids cross-task synchronization");
  rules.emplace_back(
      "alloc-in-kernel",
      "allocation inside a linalg kernel loop body; hot kernels must be "
      "allocation-free");
  rules.emplace_back(
      "throw-across-parallel",
      "raw throw inside a parallel_for body; route errors through the "
      "exception-capture idiom");
  return rules;
}

std::optional<std::set<std::string>> parse_threading_inventory(
    const std::filesystem::path& design_md) {
  std::ifstream in(design_md, std::ios::binary);
  if (!in) return std::nullopt;
  std::set<std::string> inventory;
  bool in_section = false;
  bool found_section = false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') {
      if (line.find("Threading inventory") != std::string::npos) {
        in_section = true;
        found_section = true;
      } else {
        in_section = false;
      }
      continue;
    }
    if (!in_section) continue;
    std::size_t open = 0;
    while ((open = line.find('`', open)) != std::string::npos) {
      const std::size_t close = line.find('`', open + 1);
      if (close == std::string::npos) break;
      inventory.insert(line.substr(open + 1, close - open - 1));
      open = close + 1;
    }
  }
  if (!found_section) return std::nullopt;
  return inventory;
}

std::set<std::string> collect_public_api(const std::filesystem::path& root) {
  std::set<std::string> api;
  const std::filesystem::path base = root / "src";
  if (!std::filesystem::exists(base)) return api;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".h") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const TokenStream ts = lex(buffer.str());
    const BracketMap brackets(ts.tokens);
    const std::set<std::string> declared =
        collect_declared_functions(ts, brackets);
    api.insert(declared.begin(), declared.end());
  }
  return api;
}

std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content,
                                  const LintOptions& options) {
  const TokenStream src = lex(content);
  const BracketMap brackets(src.tokens);
  std::vector<Finding> findings;

  for (const PatternRule& rule : pattern_rules()) {
    if (!rule.applies(path)) continue;
    const bool is_naked_new = std::string(rule.id) == "naked-new";
    for (std::size_t i = 0; i < src.lines.size(); ++i) {
      bool hit = false;
      if (is_naked_new) {
        std::size_t pos = 0;
        hit = naked_new_matches(src.lines[i], pos);
      } else {
        hit = std::regex_search(src.lines[i], rule.pattern);
      }
      if (hit) findings.push_back({path, i + 1, rule.id, rule.message});
    }
  }

  check_include_guard(path, src, findings);
  check_parallel_captures(path, src, findings);
  check_parallel_inventory(path, src, options, findings);
  check_unchecked_public_entry(path, src, brackets, options, findings);
  check_lock_in_parallel(path, src, brackets, findings);
  check_alloc_in_kernel(path, src, brackets, findings);
  check_throw_across_parallel(path, src, brackets, findings);
  apply_suppressions(src, findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content) {
  return lint_content(path, content, LintOptions{});
}

std::vector<Finding> lint_file(const std::filesystem::path& file,
                               const std::string& relative,
                               const LintOptions& options) {
  std::ifstream in(file, std::ios::binary);
  if (!in)
    return {{relative, 0, "io-error", "cannot read file"}};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_content(relative, buffer.str(), options);
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<std::string>& dirs) {
  static const std::vector<std::string> kDefaultDirs = {"src", "tools",
                                                        "bench", "examples"};
  const std::vector<std::string>& walk = dirs.empty() ? kDefaultDirs : dirs;

  LintOptions options;
  options.threading_inventory = parse_threading_inventory(root / "DESIGN.md");
  options.public_api = collect_public_api(root);

  std::vector<Finding> findings;
  for (const std::string& dir : walk) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
          ext == ".h")
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      std::string relative =
          std::filesystem::relative(file, root).generic_string();
      auto file_findings = lint_file(file, relative, options);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }
  return findings;
}

namespace {

int usage(std::ostream& out) {
  out << "usage: vn2_lint [--root DIR] [--list-rules] [--sarif OUT]\n"
         "                [--baseline FILE] [DIR...]\n"
         "Lints src/, tools/, bench/, examples/ under --root\n"
         "(default: current directory) or the listed DIRs.\n"
         "  --sarif OUT      also write findings as SARIF 2.1.0\n"
         "  --baseline FILE  suppress findings listed in a SARIF\n"
         "                   baseline; stale entries are errors (the\n"
         "                   baseline may only shrink)\n"
         "Exit codes: 0 clean, 1 findings (or stale baseline), 2\n"
         "usage/IO error.\n";
  return 2;
}

void print_finding(const Finding& f) {
  std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
            << f.message << '\n';
}

}  // namespace

int lint_main(int argc, const char* const* argv) {
  std::filesystem::path root = std::filesystem::current_path();
  std::vector<std::string> dirs;
  std::string sarif_out;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& id : rule_ids()) std::cout << id << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "vn2_lint: unknown option " << arg << '\n';
      return usage(std::cerr);
    } else {
      dirs.push_back(arg);
    }
  }
  if (!std::filesystem::exists(root)) {
    std::cerr << "vn2_lint: --root " << root.string()
              << " does not exist\n";
    return 2;
  }

  std::vector<Finding> baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "vn2_lint: cannot read baseline " << baseline_path
                << '\n';
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto parsed = findings_from_sarif(buffer.str(), &error);
    if (!parsed) {
      std::cerr << "vn2_lint: invalid SARIF baseline " << baseline_path
                << ": " << error << '\n';
      return 2;
    }
    baseline = *parsed;
  }

  const auto findings = lint_tree(root, dirs);
  const bool io_failed =
      std::any_of(findings.begin(), findings.end(),
                  [](const Finding& f) { return f.rule == "io-error"; });
  const BaselineDiff diff = apply_baseline(findings, baseline);

  if (!sarif_out.empty()) {
    std::ofstream out(sarif_out, std::ios::binary);
    out << to_sarif(diff.active);
    if (!out) {
      std::cerr << "vn2_lint: cannot write SARIF to " << sarif_out << '\n';
      return 2;
    }
  }

  for (const Finding& f : diff.active) print_finding(f);
  for (const Finding& f : diff.stale)
    std::cout << f.file << ':' << f.line << ": [baseline-stale] fixed "
              << "finding still listed in the baseline; remove the '"
              << f.rule << "' entry (the baseline may only shrink)\n";
  if (!diff.suppressed.empty())
    std::cout << "vn2-lint: " << diff.suppressed.size()
              << " grandfathered finding"
              << (diff.suppressed.size() == 1 ? "" : "s")
              << " suppressed by the baseline\n";

  if (io_failed) return 2;
  const std::size_t failures = diff.active.size() + diff.stale.size();
  if (failures == 0) {
    std::cout << "vn2-lint: clean\n";
    return 0;
  }
  std::cout << "vn2-lint: " << failures << " finding"
            << (failures == 1 ? "" : "s") << '\n';
  return 1;
}

}  // namespace vn2::lint

#ifndef VN2_LINT_NO_MAIN

int main(int argc, char** argv) { return vn2::lint::lint_main(argc, argv); }

#endif  // VN2_LINT_NO_MAIN
