// vn2-lint implementation. See vn2_lint.hpp for the contract and DESIGN.md
// for the rule catalogue. Everything here is deliberately std-only so the
// checker builds in seconds on any toolchain and can gate CI without
// pulling in a compiler frontend: the rules are textual (comment- and
// string-aware), which is exactly the right power-to-weight for a ~5k LoC
// tree with a consistent house style.
#include "vn2_lint.hpp"

// GCC attributes -Wmaybe-uninitialized false positives to <functional>
// internals when std::regex is instantiated under -fsanitize=undefined
// (GCC PR105562), so silence that one diagnostic for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace vn2::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preprocessing: strip comments and literal contents (preserving
// line structure) and collect per-line suppression sets.

struct Preprocessed {
  std::vector<std::string> lines;  ///< Code with comments/literals blanked.
  /// line (1-based) -> rules allowed on that line.
  std::map<std::size_t, std::set<std::string>> allowed;
};

// Records `// vn2-lint: allow(a, b)` for `line`; a suppression comment on
// an otherwise-empty line applies to the next line instead, so violations
// can be annotated above as well as beside.
void record_suppressions(const std::string& comment, bool own_code_on_line,
                         std::size_t line, Preprocessed& out) {
  static const std::regex kAllow(R"(vn2-lint:\s*allow\(([^)]*)\))");
  std::smatch match;
  if (!std::regex_search(comment, match, kAllow)) return;
  std::stringstream list(match[1].str());
  std::string rule;
  const std::size_t target = own_code_on_line ? line : line + 1;
  while (std::getline(list, rule, ',')) {
    const auto begin = rule.find_first_not_of(" \t");
    const auto end = rule.find_last_not_of(" \t");
    if (begin == std::string::npos) continue;
    out.allowed[target].insert(rule.substr(begin, end - begin + 1));
  }
}

/// Blanks comments, string literals, and char literals so rules only ever
/// match real code. Raw strings (R"delim(...)delim") are handled; line
/// structure is preserved so findings stay anchored.
Preprocessed preprocess(const std::string& content) {
  Preprocessed out;
  std::string line;
  std::string comment;       // comment text accumulated for this line
  bool in_block_comment = false;
  bool code_seen_on_line = false;

  std::size_t i = 0;
  std::size_t line_no = 1;
  const std::size_t n = content.size();

  auto flush_line = [&]() {
    record_suppressions(comment, code_seen_on_line, line_no, out);
    out.lines.push_back(line);
    line.clear();
    comment.clear();
    code_seen_on_line = false;
    ++line_no;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      flush_line();
      ++i;
      continue;
    }
    if (in_block_comment) {
      comment += c;
      if (c == '*' && i + 1 < n && content[i + 1] == '/') {
        in_block_comment = false;
        comment += '/';
        ++i;
      }
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      // Line comment: consume to end of line (newline handled above).
      while (i < n && content[i] != '\n') comment += content[i++];
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      in_block_comment = true;
      comment += "/*";
      i += 2;
      continue;
    }
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim".
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && content[p] != '(') delim += content[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t close = content.find(closer, p);
      if (close == std::string::npos) close = n;
      // Keep line structure: newlines inside the literal still break lines.
      line += "\"\"";
      code_seen_on_line = true;
      for (std::size_t q = i; q < std::min(close + closer.size(), n); ++q)
        if (content[q] == '\n') flush_line();
      i = std::min(close + closer.size(), n);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      line += quote;
      code_seen_on_line = true;
      ++i;
      while (i < n && content[i] != quote && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) ++i;  // skip escape
        ++i;
      }
      if (i < n && content[i] == quote) {
        line += quote;
        ++i;
      }
      continue;
    }
    line += c;
    if (!std::isspace(static_cast<unsigned char>(c))) code_seen_on_line = true;
    ++i;
  }
  if (!line.empty() || !comment.empty()) flush_line();
  return out;
}

// ---------------------------------------------------------------------------
// Path scoping helpers. Paths are repo-relative with forward slashes.

bool starts_with(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

bool in_numeric_kernels(const std::string& path) {
  return starts_with(path, "src/linalg/") || starts_with(path, "src/nmf/");
}

bool is_library_code(const std::string& path) {
  return starts_with(path, "src/");
}

// The sanctioned exception files: seeded RNG lives in linalg/random, the
// simulator owns the (virtual) clock, and the telemetry layer owns the
// one real (monotonic) clock used for span timing.
bool is_random_home(const std::string& path) {
  return starts_with(path, "src/linalg/random.");
}

bool is_clock_home(const std::string& path) {
  return starts_with(path, "src/wsn/simulator.") ||
         starts_with(path, "src/telemetry/");
}

// ---------------------------------------------------------------------------
// Simple regex-per-line rules.

struct PatternRule {
  const char* id;
  const char* message;
  std::regex pattern;
  bool (*applies)(const std::string& path);
};

const std::vector<PatternRule>& pattern_rules() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    r.push_back({"nondeterminism-random",
                 "nondeterministic RNG in analysis code; use the seeded "
                 "generators in linalg/random",
                 std::regex(R"((\brand\s*\()|(\bsrand\s*\()|(std::random_device))"),
                 [](const std::string& p) { return !is_random_home(p); }});
    r.push_back({"nondeterminism-clock",
                 "wall-clock time in analysis code; results must not depend "
                 "on when they run (simulator time and telemetry's "
                 "monotonic_ns are the only clocks)",
                 std::regex(R"((std::chrono::\w*_clock::now)|(\btime\s*\()|(\bclock\s*\()|(\bgettimeofday\s*\())"),
                 [](const std::string& p) { return !is_clock_home(p); }});
    r.push_back({"float-in-numeric",
                 "float in a numeric kernel; linalg/nmf compute in double "
                 "only (bit-identical parallel results depend on it)",
                 std::regex(R"(\bfloat\b)"),
                 [](const std::string& p) { return in_numeric_kernels(p); }});
    r.push_back({"io-in-library",
                 "direct stdout/stderr IO in library code; route output "
                 "through the trace layer or return it to the caller",
                 std::regex(R"((std::cout)|(std::cerr)|(\bprintf\s*\()|(\bfprintf\s*\()|(\bputs\s*\())"),
                 [](const std::string& p) { return is_library_code(p) &&
                                                   !starts_with(p, "src/trace/"); }});
    r.push_back({"using-namespace-header",
                 "using namespace in a header leaks into every includer",
                 std::regex(R"(\busing\s+namespace\b)"),
                 [](const std::string& p) { return is_header(p); }});
    // naked-new needs a lookbehind (`= delete` is fine) that std::regex
    // lacks, so lint_content dispatches it to naked_new_matches instead of
    // this placeholder pattern.
    r.push_back({"naked-new",
                 "naked new/delete; use containers or smart pointers so "
                 "ownership is explicit and exception-safe",
                 std::regex(R"(\b(new|delete)\b)"),
                 [](const std::string&) { return true; }});
    // Sparsity shortcuts of the form `if (x == 0.0) continue;` silently
    // turn 0·NaN into 0 (IEEE says NaN), hide Inf, and make the kernel's
    // runtime depend on the data. Kernels must stream every entry; loops
    // whose inputs are provably finite may suppress with a justification.
    r.push_back({"zero-skip-kernel",
                 "data-dependent zero-skip in a numeric kernel; 0*NaN must "
                 "stay NaN and runtime must not depend on the data "
                 "(suppress only where inputs are provably finite)",
                 std::regex(R"(==\s*0(\.0*)?\s*\)\s*continue\b)"),
                 [](const std::string& p) { return in_numeric_kernels(p); }});
    // Default-constructed engines seed from a fixed constant, which reads
    // like determinism but silently correlates every such stream. The
    // identifier must not end in '_': members are seeded in a constructor
    // initializer the line can't see.
    r.push_back({"unseeded-mt19937",
                 "default-constructed std::mt19937; every engine must take "
                 "an explicit seed (see linalg/random)",
                 std::regex(R"(\bstd::mt19937(?:_64)?\s+(?:[A-Za-z_]\w*[A-Za-z0-9]|[A-Za-z])\s*(?:;|\{\s*\}|\(\s*\)))"),
                 [](const std::string& p) { return !is_random_home(p); }});
    return r;
  }();
  return rules;
}

// std::regex has no lookbehind; handle the `= delete` / `delete;` special
// cases by hand instead of in the pattern above.
bool naked_new_matches(const std::string& code, std::size_t& pos) {
  static const std::regex kNewDelete(R"(\b(new|delete)\b)");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kNewDelete);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::smatch& m = *it;
    const std::string word = m[1].str();
    const std::size_t at = static_cast<std::size_t>(m.position(1));
    if (word == "delete") {
      // `= delete` (deleted special member) is fine; so is `= delete;`.
      std::size_t q = at;
      while (q > 0 && std::isspace(static_cast<unsigned char>(code[q - 1])))
        --q;
      if (q > 0 && code[q - 1] == '=') continue;
    }
    pos = at;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Header hygiene: every header needs `#pragma once` (house style) or a
// classic include guard.

void check_include_guard(const std::string& path, const Preprocessed& src,
                         std::vector<Finding>& findings) {
  if (!is_header(path)) return;
  bool guarded = false;
  for (std::size_t i = 0; i < src.lines.size() && !guarded; ++i) {
    const std::string& l = src.lines[i];
    if (l.find("#pragma once") != std::string::npos) guarded = true;
    if (l.find("#ifndef") != std::string::npos &&
        i + 1 < src.lines.size() &&
        src.lines[i + 1].find("#define") != std::string::npos)
      guarded = true;
  }
  if (!guarded)
    findings.push_back({path, 1, "include-guard",
                        "header lacks #pragma once or an include guard"});
}

// ---------------------------------------------------------------------------
// parallel_for capture hygiene.
//
// The determinism promise of the parallel layer is "write only to
// index-owned slots". A write to a bare `&`-captured local from inside a
// parallel_for body is almost always a data race, so we flag it. The
// heuristic is textual: inside each inline lambda passed to parallel_for,
// flag `x = ...`, `x op= ...`, `++x` / `x++` where `x` is a plain
// identifier (no subscript/member/call syntax, which index-owned writes
// use) that is neither declared inside the body nor the loop parameter.

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "if", "else", "for", "while", "do", "switch", "case", "return",
      "break", "continue", "auto", "const", "constexpr", "static", "double",
      "float", "int", "bool", "char", "long", "unsigned", "signed", "void",
      "sizeof", "true", "false", "new", "delete", "this", "using", "typedef"};
  return kw;
}

/// Finds the matching close brace/paren/bracket for the opener at `open`.
std::size_t find_balanced(const std::string& text, std::size_t open,
                          char open_ch, char close_ch) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) ++depth;
    if (text[i] == close_ch && --depth == 0) return i;
  }
  return std::string::npos;
}

struct LambdaInfo {
  std::string captures;        ///< text inside [ ]
  std::string params;          ///< text inside ( )
  std::string body;            ///< text inside { }
  std::size_t body_start_line; ///< 1-based line of the opening brace
};

/// Identifiers declared anywhere in the body (type-name preceded writes,
/// loop variables, reference bindings). Over-collecting is safe — it only
/// makes the rule quieter.
std::set<std::string> declared_names(const std::string& body) {
  std::set<std::string> names;
  static const std::regex kDecl(
      R"(([A-Za-z_][\w:<>]*[\s&*]+|auto[\s&*]+)([A-Za-z_]\w*)\s*(=|;|\{|:))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kDecl);
       it != std::sregex_iterator(); ++it)
    names.insert((*it)[2].str());
  return names;
}

std::set<std::string> param_names(const std::string& params) {
  std::set<std::string> names;
  static const std::regex kParam(R"(([A-Za-z_]\w*)\s*(,|$))");
  for (auto it = std::sregex_iterator(params.begin(), params.end(), kParam);
       it != std::sregex_iterator(); ++it)
    names.insert((*it)[1].str());
  return names;
}

void check_lambda_writes(const std::string& path, const LambdaInfo& lambda,
                         std::vector<Finding>& findings) {
  if (lambda.captures.find('&') == std::string::npos) return;

  // Explicit by-reference capture names ([&x, y] style); empty for [&].
  std::set<std::string> by_ref;
  bool blanket = false;
  {
    static const std::regex kCap(R"(&\s*([A-Za-z_]\w*)?)");
    for (auto it = std::sregex_iterator(lambda.captures.begin(),
                                        lambda.captures.end(), kCap);
         it != std::sregex_iterator(); ++it) {
      if ((*it)[1].matched)
        by_ref.insert((*it)[1].str());
      else
        blanket = true;
    }
  }

  const std::set<std::string> declared = declared_names(lambda.body);
  const std::set<std::string> params = param_names(lambda.params);

  // `x =` (not ==/<=/...), `x op=`, `++x`, `x++` on a bare identifier.
  static const std::regex kWrite(
      R"((\+\+|--)\s*([A-Za-z_]\w*)|([A-Za-z_]\w*)\s*(\+\+|--|(?:[+\-*/%|&^]|<<|>>)?=(?![=])))");
  std::size_t line = lambda.body_start_line;
  std::istringstream stream(lambda.body);
  std::string body_line;
  while (std::getline(stream, body_line)) {
    for (auto it = std::sregex_iterator(body_line.begin(), body_line.end(),
                                        kWrite);
         it != std::sregex_iterator(); ++it) {
      const std::smatch& m = *it;
      const bool prefix = m[2].matched;
      const std::string name = prefix ? m[2].str() : m[3].str();
      if (!prefix) {
        // Reject comparisons (== already excluded) and `<= >=` matches of
        // the form `x <... =`: the op group guarantees an assignment or
        // increment, but `x ==` slips through as `x =` when the regex
        // starts mid-token; guard on the char after the match.
        const std::size_t after =
            static_cast<std::size_t>(m.position(0) + m.length(0));
        if (after < body_line.size() && body_line[after] == '=') continue;
        // Bare-identifier writes only: subscripts / members / calls write
        // through an index-owned slot or an object, which is the sanctioned
        // pattern (out[i] = ..., point.rank = ..., w(i, r) = ...).
        const std::size_t name_end =
            static_cast<std::size_t>(m.position(3) + m.length(3));
        std::size_t q = name_end;
        while (q < body_line.size() &&
               std::isspace(static_cast<unsigned char>(body_line[q])))
          ++q;
        if (q < body_line.size() && (body_line[q] == '[' ||
                                     body_line[q] == '(' ||
                                     body_line[q] == '.' ||
                                     (body_line[q] == '-' &&
                                      q + 1 < body_line.size() &&
                                      body_line[q + 1] == '>')))
          continue;
        // Declarations (`Type name = ...`): preceding token is part of a
        // type name.
        std::size_t p = static_cast<std::size_t>(m.position(3));
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(body_line[p - 1])))
          --p;
        if (p > 0) {
          const char before = body_line[p - 1];
          // Preceding type token => declaration; preceding '.'/'->' =>
          // member write through an object, which is the object's business.
          if (std::isalnum(static_cast<unsigned char>(before)) ||
              before == '_' || before == '>' || before == '*' ||
              before == '&' || before == ':' || before == '.')
            continue;
        }
      }
      if (cpp_keywords().count(name)) continue;
      if (declared.count(name) || params.count(name)) continue;
      if (!blanket && !by_ref.count(name)) continue;
      findings.push_back(
          {path, line, "parallel-capture",
           "write to '&'-captured local '" + name +
               "' inside a parallel_for body; writes must go to "
               "index-owned slots (or use a per-task local + reduction)"});
    }
    ++line;
  }
}

void check_parallel_captures(const std::string& path, const Preprocessed& src,
                             std::vector<Finding>& findings) {
  // Work on the joined stripped text so lambdas spanning lines are seen.
  std::string joined;
  std::vector<std::size_t> line_of_offset;
  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    for (std::size_t j = 0; j <= src.lines[i].size(); ++j)
      line_of_offset.push_back(i + 1);
    joined += src.lines[i];
    joined += '\n';
  }

  std::size_t search = 0;
  while ((search = joined.find("parallel_for", search)) != std::string::npos) {
    const std::size_t call_open = joined.find('(', search);
    search += 12;  // length of "parallel_for"
    if (call_open == std::string::npos) continue;
    const std::size_t call_close =
        find_balanced(joined, call_open, '(', ')');
    if (call_close == std::string::npos) continue;

    // Inline lambda argument, if any.
    const std::size_t cap_open = joined.find('[', call_open);
    if (cap_open == std::string::npos || cap_open > call_close) continue;
    const std::size_t cap_close = find_balanced(joined, cap_open, '[', ']');
    if (cap_close == std::string::npos) continue;
    LambdaInfo lambda;
    lambda.captures =
        joined.substr(cap_open + 1, cap_close - cap_open - 1);
    const std::size_t par_open = joined.find('(', cap_close);
    if (par_open != std::string::npos && par_open < call_close) {
      const std::size_t par_close =
          find_balanced(joined, par_open, '(', ')');
      if (par_close != std::string::npos)
        lambda.params = joined.substr(par_open + 1, par_close - par_open - 1);
    }
    const std::size_t body_open = joined.find('{', cap_close);
    if (body_open == std::string::npos) continue;
    const std::size_t body_close =
        find_balanced(joined, body_open, '{', '}');
    if (body_close == std::string::npos) continue;
    lambda.body = joined.substr(body_open + 1, body_close - body_open - 1);
    lambda.body_start_line = line_of_offset[std::min(
        body_open, line_of_offset.size() - 1)];
    check_lambda_writes(path, lambda, findings);
  }
}

// ---------------------------------------------------------------------------
// Threading inventory: DESIGN.md enumerates every file sanctioned to call
// parallel_for, so a new call site forces a (reviewed) doc update. The
// parallel layer itself is exempt — it defines the function.

void check_parallel_inventory(const std::string& path, const Preprocessed& src,
                              const LintOptions& options,
                              std::vector<Finding>& findings) {
  if (!options.threading_inventory) return;
  if (starts_with(path, "src/core/parallel.")) return;
  if (options.threading_inventory->count(path)) return;
  static const std::regex kCall(R"(\bparallel_for\s*\()");
  for (std::size_t i = 0; i < src.lines.size(); ++i)
    if (std::regex_search(src.lines[i], kCall))
      findings.push_back(
          {path, i + 1, "parallel-inventory",
           "parallel_for call site not listed in DESIGN.md's threading "
           "inventory; add the file there (and justify the parallelism)"});
}

void apply_suppressions(const Preprocessed& src,
                        std::vector<Finding>& findings) {
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       auto it = src.allowed.find(f.line);
                       return it != src.allowed.end() &&
                              it->second.count(f.rule) > 0;
                     }),
      findings.end());
}

}  // namespace

std::vector<std::string> rule_ids() {
  std::vector<std::string> ids;
  for (const PatternRule& rule : pattern_rules()) ids.push_back(rule.id);
  ids.push_back("include-guard");
  ids.push_back("parallel-capture");
  ids.push_back("parallel-inventory");
  return ids;
}

std::optional<std::set<std::string>> parse_threading_inventory(
    const std::filesystem::path& design_md) {
  std::ifstream in(design_md, std::ios::binary);
  if (!in) return std::nullopt;
  std::set<std::string> inventory;
  bool in_section = false;
  bool found_section = false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') {
      if (line.find("Threading inventory") != std::string::npos) {
        in_section = true;
        found_section = true;
      } else {
        in_section = false;
      }
      continue;
    }
    if (!in_section) continue;
    std::size_t open = 0;
    while ((open = line.find('`', open)) != std::string::npos) {
      const std::size_t close = line.find('`', open + 1);
      if (close == std::string::npos) break;
      inventory.insert(line.substr(open + 1, close - open - 1));
      open = close + 1;
    }
  }
  if (!found_section) return std::nullopt;
  return inventory;
}

std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content,
                                  const LintOptions& options) {
  const Preprocessed src = preprocess(content);
  std::vector<Finding> findings;

  for (const PatternRule& rule : pattern_rules()) {
    if (!rule.applies(path)) continue;
    const bool is_naked_new = std::string(rule.id) == "naked-new";
    for (std::size_t i = 0; i < src.lines.size(); ++i) {
      bool hit = false;
      if (is_naked_new) {
        std::size_t pos = 0;
        hit = naked_new_matches(src.lines[i], pos);
      } else {
        hit = std::regex_search(src.lines[i], rule.pattern);
      }
      if (hit) findings.push_back({path, i + 1, rule.id, rule.message});
    }
  }

  check_include_guard(path, src, findings);
  check_parallel_captures(path, src, findings);
  check_parallel_inventory(path, src, options, findings);
  apply_suppressions(src, findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content) {
  return lint_content(path, content, LintOptions{});
}

std::vector<Finding> lint_file(const std::filesystem::path& file,
                               const std::string& relative,
                               const LintOptions& options) {
  std::ifstream in(file, std::ios::binary);
  if (!in)
    return {{relative, 0, "io-error", "cannot read file"}};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_content(relative, buffer.str(), options);
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<std::string>& dirs) {
  static const std::vector<std::string> kDefaultDirs = {"src", "tools",
                                                        "bench", "examples"};
  const std::vector<std::string>& walk = dirs.empty() ? kDefaultDirs : dirs;

  LintOptions options;
  options.threading_inventory = parse_threading_inventory(root / "DESIGN.md");

  std::vector<Finding> findings;
  for (const std::string& dir : walk) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
          ext == ".h")
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      std::string relative =
          std::filesystem::relative(file, root).generic_string();
      auto file_findings = lint_file(file, relative, options);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }
  return findings;
}

}  // namespace vn2::lint

#ifndef VN2_LINT_NO_MAIN

namespace {

int usage() {
  std::cout << "usage: vn2_lint [--root DIR] [--list-rules] [DIR...]\n"
               "Lints src/, tools/, bench/, examples/ under --root\n"
               "(default: current directory) or the listed DIRs.\n"
               "Exits 1 when any unsuppressed finding remains.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = std::filesystem::current_path();
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& id : vn2::lint::rule_ids())
        std::cout << id << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "vn2_lint: unknown option " << arg << '\n';
      return usage();
    } else {
      dirs.push_back(arg);
    }
  }

  const auto findings = vn2::lint::lint_tree(root, dirs);
  for (const auto& f : findings)
    std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
              << f.message << '\n';
  if (findings.empty()) {
    std::cout << "vn2-lint: clean\n";
    return 0;
  }
  std::cout << "vn2-lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << '\n';
  return 1;
}

#endif  // VN2_LINT_NO_MAIN
