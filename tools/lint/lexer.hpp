// vn2-lint v2 lexer.
//
// One scan over a translation unit produces the three views every rule
// layer consumes:
//
//  * a real C++ token stream (identifiers, numbers, punctuation, collapsed
//    string/char literals) with 1-based line numbers, comment- and
//    raw-string-aware, preprocessor lines marked so brace tracking is not
//    confused by macro bodies;
//  * the comment/literal-blanked line view the line-regex rules match
//    against (line structure preserved, so findings stay anchored) —
//    byte-compatible with the v1 `preprocess` pass, which is what keeps
//    the eleven v1 rules bit-identical on their fixtures;
//  * the per-line `// vn2-lint: allow(...)` suppression sets.
//
// Deliberately std-only: the whole tool builds with one compiler
// invocation and no cmake (see DESIGN.md "Correctness & static analysis").
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace vn2::lint {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< numeric literal (pp-number, coarse)
  kString,      ///< string or raw-string literal, contents collapsed
  kCharLit,     ///< character literal, contents collapsed
  kPunct,       ///< one punctuator; "::" and "->" are single tokens
};

struct Token {
  TokenKind kind;
  std::string text;        ///< spelling ("" contents for literals)
  std::size_t line = 0;    ///< 1-based source line
  bool preprocessor = false;  ///< on a `#...` line (incl. continuations)

  bool is(const char* t) const { return text == t; }
  bool ident(const char* t) const {
    return kind == TokenKind::kIdentifier && text == t;
  }
};

/// The lexed unit. `lines` is the blanked-line view; `tokens` excludes
/// nothing (preprocessor tokens are present but flagged, so structural
/// passes can skip them while line rules still see the text).
struct TokenStream {
  std::vector<Token> tokens;
  std::vector<std::string> lines;  ///< comments/literals blanked
  /// line (1-based) -> rules allowed on that line.
  std::map<std::size_t, std::set<std::string>> allowed;
};

/// Lexes `content` (one file) into tokens + blanked lines + suppressions.
[[nodiscard]] TokenStream lex(const std::string& content);

/// True for C++ keywords (token-level; used to reject keyword
/// "identifiers" in declaration/usage heuristics).
[[nodiscard]] bool is_keyword(const std::string& word);

}  // namespace vn2::lint
