#include "lint/sarif.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <sstream>

namespace vn2::lint {

namespace {

// ---------------------------------------------------------------------------
// JSON writing.

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON parsing: a strict, minimal recursive-descent parser — enough for
// SARIF logs, with real errors instead of best-effort recovery.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!value(v)) {
      if (error) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing characters after JSON document";
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& why) {
    if (error_.empty())
      error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool literal(const char* word, JsonValue& out, JsonValue::Kind kind,
               bool boolean) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    out.kind = kind;
    out.boolean = boolean;
    return true;
  }

  bool string_token(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected string");
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_ + 1 + k];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            pos_ += 4;
            // BMP-only decode (SARIF we emit never needs surrogates).
            if (code < 0x80) {
              c = static_cast<char>(code);
            } else {
              if (code < 0x800) {
                out += static_cast<char>(0xC0 | (code >> 6));
              } else {
                out += static_cast<char>(0xE0 | (code >> 12));
                out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              }
              out += static_cast<char>(0x80 | (code & 0x3F));
              ++pos_;
              continue;
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      }
      out += c;
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') return literal("null", out, JsonValue::Kind::kNull, false);
    if (c == 't') return literal("true", out, JsonValue::Kind::kBool, true);
    if (c == 'f') return literal("false", out, JsonValue::Kind::kBool, false);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string_token(out.string);
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue element;
        if (!value(element)) return false;
        out.array.push_back(std::move(element));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_token(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':')
          return fail("expected ':'");
        ++pos_;
        JsonValue element;
        if (!value(element)) return false;
        out.object.emplace(std::move(key), std::move(element));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    // Number.
    const std::size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("unexpected character");
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

const JsonValue* expect(const JsonValue* v, const char* key,
                        JsonValue::Kind kind, std::string* error,
                        const char* what) {
  const JsonValue* child = v ? v->get(key) : nullptr;
  if (!child || child->kind != kind) {
    if (error) *error = std::string("missing or mistyped ") + what;
    return nullptr;
  }
  return child;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  // Stable rule order + index map for results' ruleIndex.
  const auto catalogue = rule_catalogue();
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < catalogue.size(); ++i)
    index_of[catalogue[i].first] = i;

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"vn2-lint\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"informationUri\": "
         "\"DESIGN.md#correctness--static-analysis\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    out << "            {\"id\": \"" << json_escape(catalogue[i].first)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalogue[i].second) << "\"}}"
        << (i + 1 < catalogue.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\"ruleId\": \"" << json_escape(f.rule) << "\"";
    const auto idx = index_of.find(f.rule);
    if (idx != index_of.end()) out << ", \"ruleIndex\": " << idx->second;
    out << ", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\", \"uriBaseId\": \"SRCROOT\"}, "
        << "\"region\": {\"startLine\": " << f.line << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

std::optional<std::vector<Finding>> findings_from_sarif(
    const std::string& json, std::string* error) {
  JsonParser parser(json);
  const auto root = parser.parse(error);
  if (!root) return std::nullopt;
  if (root->kind != JsonValue::Kind::kObject) {
    if (error) *error = "SARIF log must be a JSON object";
    return std::nullopt;
  }
  const JsonValue* version =
      expect(&*root, "version", JsonValue::Kind::kString, error, "version");
  if (!version) return std::nullopt;
  if (version->string != "2.1.0") {
    if (error) *error = "unsupported SARIF version " + version->string;
    return std::nullopt;
  }
  const JsonValue* runs =
      expect(&*root, "runs", JsonValue::Kind::kArray, error, "runs array");
  if (!runs) return std::nullopt;
  std::vector<Finding> findings;
  for (const JsonValue& run : runs->array) {
    if (run.kind != JsonValue::Kind::kObject) {
      if (error) *error = "run must be an object";
      return std::nullopt;
    }
    const JsonValue* results = expect(&run, "results",
                                      JsonValue::Kind::kArray, error,
                                      "run.results array");
    if (!results) return std::nullopt;
    for (const JsonValue& result : results->array) {
      const JsonValue* rule_id =
          expect(&result, "ruleId", JsonValue::Kind::kString, error,
                 "result.ruleId");
      const JsonValue* message =
          expect(&result, "message", JsonValue::Kind::kObject, error,
                 "result.message");
      const JsonValue* locations =
          expect(&result, "locations", JsonValue::Kind::kArray, error,
                 "result.locations");
      if (!rule_id || !message || !locations) return std::nullopt;
      const JsonValue* text = expect(message, "text",
                                     JsonValue::Kind::kString, error,
                                     "result.message.text");
      if (!text) return std::nullopt;
      if (locations->array.empty()) {
        if (error) *error = "result.locations is empty";
        return std::nullopt;
      }
      const JsonValue* physical =
          expect(&locations->array.front(), "physicalLocation",
                 JsonValue::Kind::kObject, error, "physicalLocation");
      if (!physical) return std::nullopt;
      const JsonValue* artifact =
          expect(physical, "artifactLocation", JsonValue::Kind::kObject,
                 error, "artifactLocation");
      if (!artifact) return std::nullopt;
      const JsonValue* uri = expect(artifact, "uri",
                                    JsonValue::Kind::kString, error,
                                    "artifactLocation.uri");
      if (!uri) return std::nullopt;
      const JsonValue* region = expect(physical, "region",
                                       JsonValue::Kind::kObject, error,
                                       "region");
      if (!region) return std::nullopt;
      const JsonValue* start = expect(region, "startLine",
                                      JsonValue::Kind::kNumber, error,
                                      "region.startLine");
      if (!start) return std::nullopt;
      Finding f;
      f.rule = rule_id->string;
      f.message = text->string;
      f.file = uri->string;
      f.line = static_cast<std::size_t>(start->number);
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

BaselineDiff apply_baseline(const std::vector<Finding>& findings,
                            const std::vector<Finding>& baseline) {
  BaselineDiff diff;
  // (rule, file, line) -> unconsumed baseline entry count.
  std::map<std::tuple<std::string, std::string, std::size_t>, std::size_t>
      pool;
  for (const Finding& b : baseline) ++pool[{b.rule, b.file, b.line}];
  for (const Finding& f : findings) {
    const auto key = std::make_tuple(f.rule, f.file, f.line);
    auto it = pool.find(key);
    if (it != pool.end() && it->second > 0) {
      --it->second;
      diff.suppressed.push_back(f);
    } else {
      diff.active.push_back(f);
    }
  }
  for (const Finding& b : baseline) {
    auto it = pool.find({b.rule, b.file, b.line});
    if (it != pool.end() && it->second > 0) {
      --it->second;
      diff.stale.push_back(b);
    }
  }
  return diff;
}

}  // namespace vn2::lint
