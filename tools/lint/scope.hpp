// vn2-lint v2 scope layer.
//
// Structural facts derived from the token stream: matched brackets,
// function definitions with parameter names (the per-function fact
// table), lambdas passed to `parallel_for`, loop bodies, and the
// function declarations a public header exports. All of it is heuristic
// — this is a linter, not a frontend — but the heuristics only ever
// over- or under-collect in directions the rules tolerate (see each
// rule's note in DESIGN.md).
#pragma once

#include "lint/lexer.hpp"

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace vn2::lint {

/// Token-index ranges are half-open [begin, end) over TokenStream::tokens.
struct TokenRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] bool empty() const { return begin >= end; }
};

/// One function definition: `name(params) ... { body }`. For qualified
/// definitions (`Matrix::resize`) `name` is the last component.
struct FunctionDef {
  std::string name;
  std::vector<std::string> params;  ///< declared parameter names, in order
  TokenRange body;                  ///< tokens strictly inside { }
  std::size_t line = 0;             ///< line of the name token
};

/// One lambda argument of a `parallel_for(...)` call.
struct ParallelLambda {
  TokenRange captures;  ///< tokens strictly inside [ ]
  TokenRange body;      ///< tokens strictly inside { }
  std::size_t line = 0; ///< line of the opening `[`
};

/// Index of every opening `(`/`[`/`{` token to its matching closer.
/// Preprocessor tokens are ignored (macro bodies must not unbalance the
/// tracker). Unmatched openers map to `tokens.size()`.
class BracketMap {
 public:
  explicit BracketMap(const std::vector<Token>& tokens);
  /// Matching closer index for the opener at `open` (tokens.size() if
  /// unmatched or `open` is not an opener).
  [[nodiscard]] std::size_t match(std::size_t open) const;

 private:
  std::vector<std::size_t> match_;
};

/// Extracts function definitions (free functions, methods defined at
/// class or namespace scope, qualified out-of-line definitions).
[[nodiscard]] std::vector<FunctionDef> extract_functions(
    const TokenStream& ts, const BracketMap& brackets);

/// Finds the inline lambda argument of every `parallel_for(...)` call.
[[nodiscard]] std::vector<ParallelLambda> find_parallel_lambdas(
    const TokenStream& ts, const BracketMap& brackets);

/// Bodies of `for`/`while`/`do` loops whose header starts inside
/// `range` (whole stream when `range` is empty-initialized as {0, n}).
/// Braced bodies are the brace interior; single-statement bodies run to
/// the terminating `;`.
[[nodiscard]] std::vector<TokenRange> find_loop_bodies(
    const TokenStream& ts, const BracketMap& brackets, TokenRange range);

/// Names of non-inline functions a header *declares* (prototype ending
/// in `;`): free functions and class-body method declarations.
/// Skips `inline`/`constexpr`/`template`/`operator`/destructors and
/// anything defined in the header itself (those are inline by nature).
[[nodiscard]] std::set<std::string> collect_declared_functions(
    const TokenStream& ts, const BracketMap& brackets);

}  // namespace vn2::lint
