#include "lint/scope.hpp"

#include <algorithm>

namespace vn2::lint {

namespace {

bool is_opener(const std::string& t) {
  return t == "(" || t == "[" || t == "{";
}
char closer_for(const std::string& t) {
  if (t == "(") return ')';
  if (t == "[") return ']';
  return '}';
}

/// Control keywords whose `(` must never be read as a parameter list.
bool control_keyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch" || t == "return" || t == "sizeof" || t == "throw" ||
         t == "alignof" || t == "decltype" || t == "new";
}

}  // namespace

BracketMap::BracketMap(const std::vector<Token>& tokens)
    : match_(tokens.size(), tokens.size()) {
  struct Open {
    std::size_t index;
    char close;
  };
  std::vector<Open> stack;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.preprocessor || t.kind != TokenKind::kPunct) continue;
    if (is_opener(t.text)) {
      stack.push_back({i, closer_for(t.text)});
    } else if (t.text == ")" || t.text == "]" || t.text == "}") {
      // Tolerate mismatches (lint input may be ill-formed): pop until the
      // matching opener kind, abandoning anything in between.
      while (!stack.empty() && stack.back().close != t.text[0])
        stack.pop_back();
      if (!stack.empty()) {
        match_[stack.back().index] = i;
        stack.pop_back();
      }
    }
  }
}

std::size_t BracketMap::match(std::size_t open) const {
  return open < match_.size() ? match_[open] : match_.size();
}

namespace {

/// Next/previous non-preprocessor token index, or `n`/npos-like `n`.
std::size_t next_sig(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t n = toks.size();
  ++i;
  while (i < n && toks[i].preprocessor) ++i;
  return i;
}
bool prev_sig(const std::vector<Token>& toks, std::size_t i,
              std::size_t& out) {
  while (i > 0) {
    --i;
    if (!toks[i].preprocessor) {
      out = i;
      return true;
    }
  }
  return false;
}

/// Parameter names from the tokens strictly inside a parameter list:
/// per top-level comma segment, the last identifier before any default
/// argument — unless it is a qualified-name tail (`std::size_t` alone
/// names no parameter).
std::vector<std::string> parse_param_names(const std::vector<Token>& toks,
                                           std::size_t begin,
                                           std::size_t end) {
  std::vector<std::string> names;
  std::size_t depth = 0;
  std::size_t seg_begin = begin;
  auto flush = [&](std::size_t seg_end) {
    std::size_t stop = seg_end;  // exclude default-argument tokens
    for (std::size_t i = seg_begin; i < stop; ++i)
      if (!toks[i].preprocessor && toks[i].is("=")) {
        stop = i;
        break;
      }
    for (std::size_t i = stop; i > seg_begin;) {
      --i;
      const Token& t = toks[i];
      if (t.preprocessor) continue;
      if (t.kind == TokenKind::kIdentifier && !is_keyword(t.text)) {
        std::size_t p = 0;
        const bool qualified_tail =
            prev_sig(toks, i, p) && p >= seg_begin && toks[p].is("::");
        if (!qualified_tail) names.push_back(t.text);
        return;
      }
      if (t.kind == TokenKind::kPunct &&
          (t.is("]") || t.is("&") || t.is("*") || t.is(">")))
        continue;  // array suffix / ref / ptr / template close before name
      return;      // anything else: unnamed or not a simple parameter
    }
  };
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.preprocessor || t.kind != TokenKind::kPunct) continue;
    if (is_opener(t.text) || t.is("<")) ++depth;
    if (t.is(")") || t.is("]") || t.is("}") || t.is(">"))
      depth = depth > 0 ? depth - 1 : 0;
    if (t.is(",") && depth == 0) {
      flush(i);
      seg_begin = i + 1;
    }
  }
  if (seg_begin < end) flush(end);
  return names;
}

/// Starting after a definition's `)` at `after_close`, finds the body's
/// opening `{` (skipping cv/ref/noexcept/trailing-return tokens and a
/// constructor member-initializer list). Returns n when this is not a
/// definition (declaration, `= default`, expression, ...).
std::size_t find_body_open(const std::vector<Token>& toks,
                           const BracketMap& brackets,
                           std::size_t after_close) {
  const std::size_t n = toks.size();
  std::size_t k = after_close;
  bool init_list = false;
  while (k < n) {
    const Token& t = toks[k];
    if (t.preprocessor) {
      ++k;
      continue;
    }
    if (t.is("{")) {
      if (!init_list) return k;
      // In an initializer list a `{` directly after an identifier is a
      // member's braced init — skip it; any other `{` is the body.
      std::size_t p = 0;
      if (prev_sig(toks, k, p) && toks[p].kind == TokenKind::kIdentifier &&
          !is_keyword(toks[p].text)) {
        const std::size_t close = brackets.match(k);
        if (close >= n) return n;
        k = close + 1;
        continue;
      }
      return k;
    }
    if (t.is(",")) {
      if (init_list) {  // between member initializers
        ++k;
        continue;
      }
      return n;
    }
    if (t.is(";") || t.is("=") || t.is(")") || t.is("}") || t.is("]"))
      return n;
    if (t.is(":")) {
      init_list = true;
      ++k;
      continue;
    }
    if (t.is("(") || t.is("[")) {
      const std::size_t close = brackets.match(k);
      if (close >= n) return n;
      k = close + 1;
      continue;
    }
    ++k;  // const/noexcept/override/->/type tokens/…
  }
  return n;
}

}  // namespace

std::vector<FunctionDef> extract_functions(const TokenStream& ts,
                                           const BracketMap& brackets) {
  const std::vector<Token>& toks = ts.tokens;
  const std::size_t n = toks.size();
  std::vector<FunctionDef> out;
  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.preprocessor || !t.is("(")) continue;
    std::size_t p = 0;
    if (!prev_sig(toks, i, p)) continue;
    const Token& name = toks[p];
    if (name.kind != TokenKind::kIdentifier || is_keyword(name.text) ||
        control_keyword(name.text))
      continue;
    std::size_t pp = 0;
    if (prev_sig(toks, p, pp) && toks[pp].is("~")) continue;  // destructor
    const std::size_t close = brackets.match(i);
    if (close >= n) continue;
    const std::size_t body_open = find_body_open(toks, brackets, close + 1);
    if (body_open >= n) continue;
    const std::size_t body_close = brackets.match(body_open);
    if (body_close >= n) continue;
    FunctionDef def;
    def.name = name.text;
    def.params = parse_param_names(toks, i + 1, close);
    def.body = {body_open + 1, body_close};
    def.line = name.line;
    out.push_back(std::move(def));
  }
  return out;
}

std::vector<ParallelLambda> find_parallel_lambdas(const TokenStream& ts,
                                                  const BracketMap& brackets) {
  const std::vector<Token>& toks = ts.tokens;
  const std::size_t n = toks.size();
  std::vector<ParallelLambda> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].preprocessor || !toks[i].ident("parallel_for")) continue;
    const std::size_t call_open = next_sig(toks, i);
    if (call_open >= n || !toks[call_open].is("(")) continue;
    const std::size_t call_close = brackets.match(call_open);
    if (call_close >= n) continue;
    // The inline lambda argument, if any.
    std::size_t cap_open = n;
    for (std::size_t k = call_open + 1; k < call_close; ++k)
      if (!toks[k].preprocessor && toks[k].is("[")) {
        cap_open = k;
        break;
      }
    if (cap_open >= n) continue;
    const std::size_t cap_close = brackets.match(cap_open);
    if (cap_close >= n) continue;
    std::size_t body_open = n;
    for (std::size_t k = cap_close + 1; k < n; ++k)
      if (!toks[k].preprocessor && toks[k].is("{")) {
        body_open = k;
        break;
      }
    if (body_open >= n) continue;
    const std::size_t body_close = brackets.match(body_open);
    if (body_close >= n) continue;
    ParallelLambda lambda;
    lambda.captures = {cap_open + 1, cap_close};
    lambda.body = {body_open + 1, body_close};
    lambda.line = toks[cap_open].line;
    out.push_back(lambda);
  }
  return out;
}

std::vector<TokenRange> find_loop_bodies(const TokenStream& ts,
                                         const BracketMap& brackets,
                                         TokenRange range) {
  const std::vector<Token>& toks = ts.tokens;
  const std::size_t n = toks.size();
  const std::size_t end = std::min(range.end, n);
  std::vector<TokenRange> out;
  for (std::size_t i = range.begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.preprocessor || t.kind != TokenKind::kIdentifier) continue;
    std::size_t body_start = n;
    if (t.is("for") || t.is("while")) {
      const std::size_t head = next_sig(toks, i);
      if (head >= n || !toks[head].is("(")) continue;
      const std::size_t head_close = brackets.match(head);
      if (head_close >= n) continue;
      body_start = next_sig(toks, head_close);
    } else if (t.is("do")) {
      body_start = next_sig(toks, i);
    } else {
      continue;
    }
    if (body_start >= n) continue;
    if (toks[body_start].is("{")) {
      const std::size_t body_close = brackets.match(body_start);
      if (body_close < n) out.push_back({body_start + 1, body_close});
    } else {
      // Single-statement body: through the terminating `;` at depth 0.
      std::size_t k = body_start;
      while (k < n && !toks[k].is(";")) {
        if (!toks[k].preprocessor && toks[k].kind == TokenKind::kPunct &&
            is_opener(toks[k].text)) {
          const std::size_t close = brackets.match(k);
          if (close >= n) break;
          k = close;
        }
        ++k;
      }
      out.push_back({body_start, std::min(k, n)});
    }
  }
  return out;
}

std::set<std::string> collect_declared_functions(const TokenStream& ts,
                                                 const BracketMap& brackets) {
  const std::vector<Token>& toks = ts.tokens;
  const std::size_t n = toks.size();

  // Classify every brace so only namespace/class scope is searched —
  // calls inside inline function bodies share the `name(args);` shape
  // with declarations and must not be collected.
  enum class Scope { kDecl, kCode };
  std::vector<std::size_t> code_opens;  // '{' indices opening code scopes
  std::vector<Scope> kind_of_open(n, Scope::kDecl);
  {
    for (std::size_t i = 0; i < n; ++i) {
      if (toks[i].preprocessor || !toks[i].is("{")) continue;
      // Look back to the start of the "statement" introducing this brace.
      Scope scope = Scope::kCode;
      bool saw_paren = false;
      for (std::size_t k = i; k > 0;) {
        --k;
        const Token& b = toks[k];
        if (b.preprocessor) continue;
        if (b.is(";") || b.is("{") || b.is("}")) break;
        if (b.is(")")) saw_paren = true;
        if (b.kind == TokenKind::kIdentifier &&
            (b.is("namespace") ||
             ((b.is("class") || b.is("struct") || b.is("union") ||
               b.is("enum")) &&
              !saw_paren))) {
          scope = Scope::kDecl;
          break;
        }
      }
      kind_of_open[i] = scope;
    }
  }

  std::set<std::string> out;
  std::vector<Scope> stack;
  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.preprocessor) continue;
    if (t.is("{")) {
      stack.push_back(kind_of_open[i]);
      continue;
    }
    if (t.is("}")) {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    const bool decl_scope =
        std::find(stack.begin(), stack.end(), Scope::kCode) == stack.end();
    if (!decl_scope || !t.is("(")) continue;
    std::size_t p = 0;
    if (!prev_sig(toks, i, p)) continue;
    const Token& name = toks[p];
    if (name.kind != TokenKind::kIdentifier || is_keyword(name.text) ||
        control_keyword(name.text))
      continue;
    std::size_t pp = 0;
    if (prev_sig(toks, p, pp) && toks[pp].is("~")) continue;
    // Reject inline/constexpr/template/friend declarations and anything
    // appearing inside an initializer or after `return` (defensive — the
    // scope filter should already exclude code positions).
    bool excluded = false;
    for (std::size_t k = p; k > 0 && !excluded;) {
      --k;
      const Token& b = toks[k];
      if (b.preprocessor) continue;
      if (b.is(";") || b.is("{") || b.is("}")) break;
      if (b.is(":")) {
        // Access specifier boundary (`public:`) — stop; but a member
        // initializer's `:` never appears at decl scope.
        std::size_t bp = 0;
        if (prev_sig(toks, k, bp) && toks[bp].kind == TokenKind::kIdentifier)
          break;
        continue;
      }
      if (b.is("inline") || b.is("constexpr") || b.is("consteval") ||
          b.is("template") || b.is("friend") || b.is("using") ||
          b.is("operator") || b.is("return") || b.is("=") || b.is("#"))
        excluded = true;
    }
    if (excluded) continue;
    // Prototype: `)` then qualifiers then `;` — never `{` (in-header
    // definition => inline) and never `=` (default/delete/pure).
    const std::size_t close = brackets.match(i);
    if (close >= n) continue;
    bool is_decl = false;
    for (std::size_t k = close + 1; k < n; ++k) {
      const Token& a = toks[k];
      if (a.preprocessor) continue;
      if (a.is(";")) {
        is_decl = true;
        break;
      }
      if (a.is("{") || a.is("=") || a.is(",") || a.is(")") || a.is("}"))
        break;
      if (a.is("(") || a.is("[")) {
        const std::size_t c2 = brackets.match(k);
        if (c2 >= n) break;
        k = c2;
      }
    }
    if (is_decl) out.insert(name.text);
  }
  return out;
}

}  // namespace vn2::lint
