// vn2-lint SARIF 2.1.0 interchange.
//
// `to_sarif` serializes findings as a single-run SARIF log (tool driver
// `vn2-lint`, one reportingDescriptor per rule, one result per finding,
// line-anchored physical locations with repo-relative URIs). The strict
// `findings_from_sarif` parser round-trips that shape — it is also how
// the checked-in `lint_baseline.sarif` is read.
//
// Baseline semantics (the ratchet): a finding matching a baseline entry
// (rule, file, line) is *suppressed* — grandfathered, reported only as a
// count; a baseline entry matching no current finding is *stale* and is
// itself an error, so the baseline can only ever shrink. The target
// state is an empty baseline.
#pragma once

#include "vn2_lint.hpp"

#include <optional>
#include <string>
#include <vector>

namespace vn2::lint {

/// Serializes `findings` as a SARIF 2.1.0 log. Every known rule id is
/// listed in the driver's rules array regardless of whether it fired, so
/// code-scanning UIs can show the full catalogue.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

/// Strictly parses a SARIF 2.1.0 log produced by `to_sarif` (or any log
/// with the same run/result shape) back into findings. On malformed
/// input returns nullopt and, when `error` is non-null, stores a
/// one-line reason.
[[nodiscard]] std::optional<std::vector<Finding>> findings_from_sarif(
    const std::string& json, std::string* error = nullptr);

/// Result of subtracting a baseline from the current findings.
struct BaselineDiff {
  std::vector<Finding> active;      ///< not in the baseline: real failures
  std::vector<Finding> suppressed;  ///< grandfathered by the baseline
  std::vector<Finding> stale;       ///< baseline entries that no longer fire
};

/// Matches findings against baseline entries by (rule, file, line), each
/// baseline entry consuming at most one finding.
[[nodiscard]] BaselineDiff apply_baseline(
    const std::vector<Finding>& findings,
    const std::vector<Finding>& baseline);

}  // namespace vn2::lint
