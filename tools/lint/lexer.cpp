#include "lint/lexer.hpp"

#include <cctype>
#include <regex>
#include <sstream>

namespace vn2::lint {

namespace {

// Records `// vn2-lint: allow(a, b)` for `line`; a suppression comment on
// an otherwise-empty line applies to the next line instead, so violations
// can be annotated above as well as beside. (Unchanged v1 semantics.)
void record_suppressions(const std::string& comment, bool own_code_on_line,
                         std::size_t line, TokenStream& out) {
  static const std::regex kAllow(R"(vn2-lint:\s*allow\(([^)]*)\))");
  std::smatch match;
  if (!std::regex_search(comment, match, kAllow)) return;
  std::stringstream list(match[1].str());
  std::string rule;
  const std::size_t target = own_code_on_line ? line : line + 1;
  while (std::getline(list, rule, ',')) {
    const auto begin = rule.find_first_not_of(" \t");
    const auto end = rule.find_last_not_of(" \t");
    if (begin == std::string::npos) continue;
    out.allowed[target].insert(rule.substr(begin, end - begin + 1));
  }
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Second pass: tokenize one blanked line. Literals were collapsed to
/// `""` / `''` by the blanking pass, so the only lexical classes left are
/// identifiers, numbers, and punctuation.
void tokenize_line(const std::string& line, std::size_t line_no,
                   bool preprocessor, std::vector<Token>& out) {
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    const char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.line = line_no;
    tok.preprocessor = preprocessor;
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(line[j])) ++j;
      tok.kind = TokenKind::kIdentifier;
      tok.text = line.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      // Coarse pp-number: digits, letters, dots, ' separators, exponent
      // signs. Precision is irrelevant — no rule inspects number values.
      std::size_t j = i;
      while (j < n && (ident_char(line[j]) || line[j] == '.' ||
                       line[j] == '\'' ||
                       ((line[j] == '+' || line[j] == '-') && j > i &&
                        (line[j - 1] == 'e' || line[j - 1] == 'E'))))
        ++j;
      tok.kind = TokenKind::kNumber;
      tok.text = line.substr(i, j - i);
      i = j;
    } else if (c == '"') {
      // Blanked literal: always the two-character marker `""`.
      tok.kind = TokenKind::kString;
      tok.text = "\"\"";
      i += (i + 1 < n && line[i + 1] == '"') ? 2 : 1;
    } else if (c == '\'') {
      tok.kind = TokenKind::kCharLit;
      tok.text = "''";
      i += (i + 1 < n && line[i + 1] == '\'') ? 2 : 1;
    } else {
      // Punctuator. "::" and "->" matter to the scope/declaration
      // heuristics, so keep them whole; everything else is one char.
      if (c == ':' && i + 1 < n && line[i + 1] == ':') {
        tok.text = "::";
        i += 2;
      } else if (c == '-' && i + 1 < n && line[i + 1] == '>') {
        tok.text = "->";
        i += 2;
      } else {
        tok.text = std::string(1, c);
        ++i;
      }
      tok.kind = TokenKind::kPunct;
    }
    out.push_back(std::move(tok));
  }
}

}  // namespace

bool is_keyword(const std::string& word) {
  static const std::set<std::string> kw = {
      "alignas",  "alignof",  "auto",      "bool",     "break",   "case",
      "catch",    "char",     "class",     "const",    "consteval",
      "constexpr", "constinit", "continue", "co_await", "co_return",
      "co_yield", "decltype", "default",   "delete",   "do",      "double",
      "else",     "enum",     "explicit",  "export",   "extern",  "false",
      "float",    "for",      "friend",    "goto",     "if",      "inline",
      "int",      "long",     "mutable",   "namespace", "new",    "noexcept",
      "nullptr",  "operator", "private",   "protected", "public", "register",
      "requires", "return",   "short",     "signed",   "sizeof",  "static",
      "struct",   "switch",   "template",  "this",     "throw",   "true",
      "try",      "typedef",  "typeid",    "typename", "union",   "unsigned",
      "using",    "virtual",  "void",      "volatile", "while"};
  return kw.count(word) > 0;
}

TokenStream lex(const std::string& content) {
  TokenStream out;
  std::string line;
  std::string comment;  // comment text accumulated for this line
  bool in_block_comment = false;
  bool code_seen_on_line = false;

  std::size_t i = 0;
  std::size_t line_no = 1;
  const std::size_t n = content.size();

  // This blanking pass is the v1 `preprocess` scanner verbatim: the
  // blanked-line view must stay byte-identical so the line-regex rules
  // keep producing bit-identical findings.
  auto flush_line = [&]() {
    record_suppressions(comment, code_seen_on_line, line_no, out);
    out.lines.push_back(line);
    line.clear();
    comment.clear();
    code_seen_on_line = false;
    ++line_no;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      flush_line();
      ++i;
      continue;
    }
    if (in_block_comment) {
      comment += c;
      if (c == '*' && i + 1 < n && content[i + 1] == '/') {
        in_block_comment = false;
        comment += '/';
        ++i;
      }
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      // Line comment: consume to end of line (newline handled above).
      while (i < n && content[i] != '\n') comment += content[i++];
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      in_block_comment = true;
      comment += "/*";
      i += 2;
      continue;
    }
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim".
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && content[p] != '(') delim += content[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t close = content.find(closer, p);
      if (close == std::string::npos) close = n;
      // Keep line structure: newlines inside the literal still break lines.
      line += "\"\"";
      code_seen_on_line = true;
      for (std::size_t q = i; q < std::min(close + closer.size(), n); ++q)
        if (content[q] == '\n') flush_line();
      i = std::min(close + closer.size(), n);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      line += quote;
      code_seen_on_line = true;
      ++i;
      while (i < n && content[i] != quote && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) ++i;  // skip escape
        ++i;
      }
      if (i < n && content[i] == quote) {
        line += quote;
        ++i;
      }
      continue;
    }
    line += c;
    if (!std::isspace(static_cast<unsigned char>(c))) code_seen_on_line = true;
    ++i;
  }
  if (!line.empty() || !comment.empty()) flush_line();

  // Tokenize the blanked lines. Preprocessor directives (and their
  // backslash continuations) are flagged so structural passes can skip
  // them — a `do { } while (0)` macro body must not unbalance the brace
  // tracker of the code that merely defines it.
  bool continued = false;
  for (std::size_t l = 0; l < out.lines.size(); ++l) {
    const std::string& text = out.lines[l];
    const std::size_t first = text.find_first_not_of(" \t");
    const bool preproc =
        continued || (first != std::string::npos && text[first] == '#');
    tokenize_line(text, l + 1, preproc, out.tokens);
    const std::size_t last = text.find_last_not_of(" \t");
    continued = preproc && last != std::string::npos && text[last] == '\\';
  }
  return out;
}

}  // namespace vn2::lint
